// Tests of the delay-CDF computation and the (1-eps)-diameter (§4.1).
#include "core/diameter.hpp"

#include <gtest/gtest.h>

#include "sim/flooding.hpp"
#include "stats/log_grid.hpp"
#include "util/rng.hpp"

namespace odtn {
namespace {

DelayCdfOptions base_options() {
  DelayCdfOptions opt;
  opt.grid = make_log_grid(0.1, 100.0, 32);
  opt.max_hops = 6;
  opt.num_threads = 2;
  return opt;
}

TEST(DelayCdf, SingleContactPairExactValues) {
  // Two nodes, one contact [10, 20], window [0, 40].
  TemporalGraph g(2, {{0, 1, 10.0, 20.0}});
  auto opt = base_options();
  opt.grid = {1.0, 5.0, 10.0, 50.0};
  opt.t_lo = 0.0;
  opt.t_hi = 40.0;
  const auto r = compute_delay_cdf(g, opt);
  // For each ordered pair (both identical by symmetry): delay(t) =
  // max(0, 10 - t) for t <= 20, inf for t > 20.
  //   delay <= 1 : t in [9, 20]  -> 11 of 40.
  //   delay <= 5 : t in [5, 20]  -> 15 of 40.
  //   delay <= 10: t in [0, 20]  -> 20 of 40.
  //   delay <= 50: same (cannot exceed 10). -> 20 of 40.
  for (const auto& cdf : {r.cdf_by_hops[0], r.cdf_unbounded}) {
    EXPECT_NEAR(cdf[0], 11.0 / 40.0, 1e-12);
    EXPECT_NEAR(cdf[1], 15.0 / 40.0, 1e-12);
    EXPECT_NEAR(cdf[2], 20.0 / 40.0, 1e-12);
    EXPECT_NEAR(cdf[3], 20.0 / 40.0, 1e-12);
  }
  EXPECT_EQ(r.diameter(0.01), 1);
  EXPECT_EQ(r.fixpoint_hops, 1);
  EXPECT_DOUBLE_EQ(r.denominator, 2.0 * 40.0);
}

TEST(DelayCdf, CdfsAreMonotoneInDelayAndHops) {
  Rng rng(7);
  std::vector<Contact> contacts;
  for (int i = 0; i < 120; ++i) {
    const auto u = static_cast<NodeId>(rng.below(8));
    auto v = static_cast<NodeId>(rng.below(7));
    if (v >= u) ++v;
    const double b = rng.uniform(0, 90);
    contacts.push_back({u, v, b, b + rng.uniform(0, 5)});
  }
  TemporalGraph g(8, std::move(contacts));
  const auto r = compute_delay_cdf(g, base_options());
  for (std::size_t k = 0; k < r.cdf_by_hops.size(); ++k) {
    for (std::size_t j = 1; j < r.grid.size(); ++j)
      ASSERT_GE(r.cdf_by_hops[k][j], r.cdf_by_hops[k][j - 1]);
    if (k > 0) {
      for (std::size_t j = 0; j < r.grid.size(); ++j)
        ASSERT_GE(r.cdf_by_hops[k][j], r.cdf_by_hops[k - 1][j]);
    }
    for (std::size_t j = 0; j < r.grid.size(); ++j)
      ASSERT_LE(r.cdf_by_hops[k][j], r.cdf_unbounded[j] + 1e-12);
  }
}

TEST(DelayCdf, MatchesMonteCarloFlooding) {
  Rng rng(21);
  std::vector<Contact> contacts;
  for (int i = 0; i < 80; ++i) {
    const auto u = static_cast<NodeId>(rng.below(6));
    auto v = static_cast<NodeId>(rng.below(5));
    if (v >= u) ++v;
    const double b = rng.uniform(0, 50);
    contacts.push_back({u, v, b, b + rng.uniform(0, 8)});
  }
  TemporalGraph g(6, std::move(contacts));
  auto opt = base_options();
  opt.t_lo = g.start_time();
  opt.t_hi = g.end_time();
  const auto r = compute_delay_cdf(g, opt);

  // Monte Carlo with 3-hop flooding at uniform (src, dst, t).
  const int samples = 30000;
  std::vector<int> hits(r.grid.size(), 0);
  for (int s = 0; s < samples; ++s) {
    const auto src = static_cast<NodeId>(rng.below(6));
    auto dst = static_cast<NodeId>(rng.below(5));
    if (dst >= src) ++dst;
    const double t0 = rng.uniform(opt.t_lo, opt.t_hi);
    const auto fr = flood(g, src, t0, 3);
    const double delay = fr.arrival_with_hops(dst, 3) - t0;
    for (std::size_t j = 0; j < r.grid.size(); ++j)
      if (delay <= r.grid[j]) ++hits[j];
  }
  for (std::size_t j = 0; j < r.grid.size(); ++j)
    EXPECT_NEAR(r.cdf_by_hops[2][j], hits[j] / static_cast<double>(samples),
                0.015)
        << "x=" << r.grid[j];
}

TEST(DelayCdf, EndpointRestrictionIgnoresExternalPairs) {
  // Nodes 0,1 internal; node 2 external relay. 0-1 never meet directly;
  // both meet 2.
  TemporalGraph g(3, {{0, 2, 0.0, 5.0}, {2, 1, 10.0, 15.0}});
  auto opt = base_options();
  opt.endpoints = {0, 1};
  opt.t_lo = 0.0;
  opt.t_hi = 20.0;
  const auto r = compute_delay_cdf(g, opt);
  EXPECT_DOUBLE_EQ(r.denominator, 2.0 * 20.0);
  // One hop: unreachable; two hops: reachable via the external relay.
  EXPECT_DOUBLE_EQ(r.cdf_by_hops[0].back(), 0.0);
  EXPECT_GT(r.cdf_by_hops[1].back(), 0.0);
  EXPECT_EQ(r.diameter(0.01), 2);
}

TEST(DelayCdf, DiameterDefinition) {
  // Force a case where 1 hop achieves clearly less than flooding: direct
  // contact exists but relay route covers far more start times.
  TemporalGraph g(3, {{0, 1, 50.0, 51.0},
                      {0, 2, 0.0, 40.0},
                      {2, 1, 0.0, 40.0}});
  auto opt = base_options();
  opt.endpoints = {0, 1};
  opt.t_lo = 0.0;
  opt.t_hi = 51.0;
  const auto r = compute_delay_cdf(g, opt);
  EXPECT_EQ(r.diameter(0.01), 2);
  // With a huge epsilon every hop count qualifies.
  EXPECT_EQ(r.diameter(1.0), 1);
}

TEST(DelayCdf, DiameterPerDelayIsBoundedByFixpoint) {
  Rng rng(5);
  std::vector<Contact> contacts;
  for (int i = 0; i < 60; ++i) {
    const auto u = static_cast<NodeId>(rng.below(7));
    auto v = static_cast<NodeId>(rng.below(6));
    if (v >= u) ++v;
    const double b = rng.uniform(0, 60);
    contacts.push_back({u, v, b, b + 1.0});
  }
  TemporalGraph g(7, std::move(contacts));
  const auto r = compute_delay_cdf(g, base_options());
  const auto per_delay = r.diameter_per_delay(0.01);
  ASSERT_EQ(per_delay.size(), r.grid.size());
  for (int k : per_delay) {
    EXPECT_GE(k, 0);
    EXPECT_LE(k, r.fixpoint_hops);
  }
  // The global diameter dominates every per-delay diameter.
  const int d = r.diameter(0.01);
  for (int k : per_delay) EXPECT_LE(k, d);
}

TEST(DelayCdf, MultiWindowEqualsUnionOfSingleWindows) {
  TemporalGraph g(2, {{0, 1, 10.0, 20.0}, {0, 1, 50.0, 60.0}});
  auto base = base_options();
  base.grid = {1.0, 100.0};
  // Two windows covering [0, 15] and [40, 55].
  auto multi = base;
  multi.windows = {{0.0, 15.0}, {40.0, 55.0}};
  const auto r = compute_delay_cdf(g, multi);
  EXPECT_DOUBLE_EQ(r.denominator, 2.0 * 30.0);
  // Manual: window 1: delay(t)=max(0,10-t) for t in (0,15]; <=1 on
  // [9,15] -> 6; always <=100 -> 15. Window 2: arrival 50 for t<=50,
  // instantaneous in (50,55]; <=1 on [49,55] -> 6; <=100 -> 15.
  EXPECT_NEAR(r.cdf_unbounded[0], (6.0 + 6.0) / 30.0, 1e-12);
  EXPECT_NEAR(r.cdf_unbounded[1], (15.0 + 15.0) / 30.0, 1e-12);
}

TEST(DelayCdf, WindowsMustBeDisjointIncreasing) {
  TemporalGraph g(2, {{0, 1, 0.0, 1.0}});
  auto opt = base_options();
  opt.windows = {{10.0, 20.0}, {15.0, 25.0}};  // overlapping
  EXPECT_THROW(compute_delay_cdf(g, opt), std::invalid_argument);
  opt.windows = {{10.0, 5.0}};  // reversed
  EXPECT_THROW(compute_delay_cdf(g, opt), std::invalid_argument);
}

TEST(DelayCdf, InvalidOptionsThrow) {
  TemporalGraph g(2, {{0, 1, 0.0, 1.0}});
  DelayCdfOptions opt;
  EXPECT_THROW(compute_delay_cdf(g, opt), std::invalid_argument);  // no grid
  opt.grid = {1.0};
  opt.max_hops = 0;
  EXPECT_THROW(compute_delay_cdf(g, opt), std::invalid_argument);
  opt.max_hops = 2;
  opt.endpoints = {0, 9};
  EXPECT_THROW(compute_delay_cdf(g, opt), std::invalid_argument);
  opt.endpoints.clear();
  opt.t_lo = 5.0;
  opt.t_hi = 1.0;
  EXPECT_THROW(compute_delay_cdf(g, opt), std::invalid_argument);
}

TEST(DelayCdf, ConvergedFlagReportsFixpointTruncation) {
  // A 5-hop chain with strictly increasing contact times: the DP needs 5
  // levels from node 0, so max_levels = 3 cannot converge.
  TemporalGraph g(6, {{0, 1, 0.0, 1.0},
                      {1, 2, 2.0, 3.0},
                      {2, 3, 4.0, 5.0},
                      {3, 4, 6.0, 7.0},
                      {4, 5, 8.0, 9.0}});
  auto opt = base_options();
  opt.max_hops = 2;
  opt.max_levels = 3;
  const auto truncated = compute_delay_cdf(g, opt);
  EXPECT_FALSE(truncated.converged);
  // fixpoint_hops degrades to max_levels + 1 (a lower bound, flagged).
  EXPECT_EQ(truncated.fixpoint_hops, 4);

  opt.max_levels = 64;
  const auto full = compute_delay_cdf(g, opt);
  EXPECT_TRUE(full.converged);
  EXPECT_EQ(full.fixpoint_hops, 5);
}

TEST(DelayCdf, EngineModesProduceIdenticalCdfs) {
  Rng rng(77);
  std::vector<Contact> contacts;
  for (int i = 0; i < 140; ++i) {
    const auto u = static_cast<NodeId>(rng.below(10));
    auto v = static_cast<NodeId>(rng.below(9));
    if (v >= u) ++v;
    const double b = rng.uniform(0, 80);
    contacts.push_back({u, v, b, b + rng.uniform(0, 6)});
  }
  TemporalGraph g(10, std::move(contacts));
  auto indexed_opt = base_options();
  indexed_opt.num_threads = 1;
  // Pin the direct accumulation path on both sides: this test isolates
  // the two propagation schemes, which must agree to the bit. (Under
  // kAuto the indexed engine would use incremental accumulation, whose
  // agreement is within rounding -- covered by the tests below.)
  indexed_opt.accumulation = CdfAccumulation::kDirect;
  auto sweep_opt = indexed_opt;
  sweep_opt.engine = EngineMode::kLevelSweep;
  const auto a = compute_delay_cdf(g, indexed_opt);
  const auto b = compute_delay_cdf(g, sweep_opt);
  ASSERT_EQ(a.cdf_by_hops.size(), b.cdf_by_hops.size());
  for (std::size_t k = 0; k < a.cdf_by_hops.size(); ++k)
    for (std::size_t j = 0; j < a.grid.size(); ++j)
      ASSERT_EQ(a.cdf_by_hops[k][j], b.cdf_by_hops[k][j]) << k << " " << j;
  for (std::size_t j = 0; j < a.grid.size(); ++j)
    ASSERT_EQ(a.cdf_unbounded[j], b.cdf_unbounded[j]);
  EXPECT_EQ(a.fixpoint_hops, b.fixpoint_hops);
  EXPECT_TRUE(a.converged);
  // The indexed engine must examine no more contacts than the sweep and
  // must actually skip frontier snapshots.
  EXPECT_LE(a.stats.contacts_examined, b.stats.contacts_examined);
  EXPECT_GT(a.stats.frontier_copies_avoided, 0u);
  EXPECT_EQ(b.stats.frontier_copies_avoided, 0u);
  EXPECT_GT(a.stats.pairs_inserted, 0u);
}

// Randomized property test for the hop-incremental accumulation scheme:
// on random temporal networks (order-independent seeds via Rng::keyed),
// the incremental CDFs must agree with the direct reference within 1e-9
// at every grid point and hop budget, and the paper's headline numbers
// -- diameter() at every eps, diameter_absolute(), diameter_per_delay()
// -- must be bit-identical.
TEST(DelayCdf, IncrementalMatchesDirectOnRandomNetworks) {
  for (std::uint64_t trial = 0; trial < 6; ++trial) {
    Rng rng = Rng::keyed(20260807, trial);
    const std::size_t n = 6 + rng.below(8);
    const int m = 80 + static_cast<int>(rng.below(160));
    std::vector<Contact> contacts;
    for (int i = 0; i < m; ++i) {
      const auto u = static_cast<NodeId>(rng.below(n));
      auto v = static_cast<NodeId>(rng.below(n - 1));
      if (v >= u) ++v;
      const double b = rng.uniform(0, 120);
      contacts.push_back({u, v, b, b + rng.uniform(0, 6)});
    }
    TemporalGraph g(n, std::move(contacts));

    auto direct_opt = base_options();
    direct_opt.max_hops = 5;
    direct_opt.accumulation = CdfAccumulation::kDirect;
    if (trial % 2 == 1)  // exercise the multi-window integration path too
      direct_opt.windows = {{0.0, 50.0}, {70.0, 110.0}};
    auto inc_opt = direct_opt;
    inc_opt.accumulation = CdfAccumulation::kIncremental;

    const auto d = compute_delay_cdf(g, direct_opt);
    const auto i = compute_delay_cdf(g, inc_opt);
    ASSERT_EQ(d.cdf_by_hops.size(), i.cdf_by_hops.size());
    for (std::size_t k = 0; k < d.cdf_by_hops.size(); ++k)
      for (std::size_t j = 0; j < d.grid.size(); ++j)
        ASSERT_NEAR(d.cdf_by_hops[k][j], i.cdf_by_hops[k][j], 1e-9)
            << "trial " << trial << " k=" << k << " j=" << j;
    for (std::size_t j = 0; j < d.grid.size(); ++j)
      ASSERT_NEAR(d.cdf_unbounded[j], i.cdf_unbounded[j], 1e-9)
          << "trial " << trial;
    for (const double eps : {0.001, 0.01, 0.05, 0.1, 0.5, 1.0}) {
      EXPECT_EQ(d.diameter(eps), i.diameter(eps)) << "trial " << trial;
      EXPECT_EQ(d.diameter_per_delay(eps), i.diameter_per_delay(eps))
          << "trial " << trial;
    }
    for (const double tol : {0.001, 0.01, 0.1})
      EXPECT_EQ(d.diameter_absolute(tol), i.diameter_absolute(tol))
          << "trial " << trial;
    EXPECT_EQ(d.fixpoint_hops, i.fixpoint_hops) << "trial " << trial;
    EXPECT_EQ(d.converged, i.converged) << "trial " << trial;
    // Direct sums the window measure per (destination, level); the
    // incremental scheme adds it in one shot per source -- same total,
    // different summation order.
    EXPECT_NEAR(d.denominator, i.denominator, 1e-9 * d.denominator)
        << "trial " << trial;
  }
}

TEST(DelayCdf, IncrementalReusesOneWorkspacePerWorker) {
  Rng rng = Rng::keyed(20260807, 99);
  std::vector<Contact> contacts;
  for (int i = 0; i < 120; ++i) {
    const auto u = static_cast<NodeId>(rng.below(9));
    auto v = static_cast<NodeId>(rng.below(8));
    if (v >= u) ++v;
    const double b = rng.uniform(0, 80);
    contacts.push_back({u, v, b, b + rng.uniform(0, 5)});
  }
  TemporalGraph g(9, std::move(contacts));
  auto opt = base_options();
  opt.num_threads = 1;

  // Incremental: one workspace allocation total, every further source is
  // a capacity-keeping reset -- the zero-steady-state-alloc contract.
  opt.accumulation = CdfAccumulation::kIncremental;
  const auto inc = compute_delay_cdf(g, opt);
  EXPECT_EQ(inc.stats.workspace_allocations, 1u);
  EXPECT_EQ(inc.stats.workspace_reuses, g.num_nodes() - 1);
  EXPECT_GT(inc.stats.cdf_pairs_integrated, 0u);

  // Direct keeps the reference fresh-engine-per-source behavior.
  opt.accumulation = CdfAccumulation::kDirect;
  const auto dir = compute_delay_cdf(g, opt);
  EXPECT_EQ(dir.stats.workspace_allocations, g.num_nodes());
  EXPECT_EQ(dir.stats.workspace_reuses, 0u);
  EXPECT_GT(dir.stats.cdf_pairs_integrated, 0u);
}

TEST(DelayCdf, IncrementalRequiresIndexedEngine) {
  TemporalGraph g(2, {{0, 1, 0.0, 1.0}});
  auto opt = base_options();
  opt.engine = EngineMode::kLevelSweep;
  opt.accumulation = CdfAccumulation::kIncremental;
  EXPECT_THROW(compute_delay_cdf(g, opt), std::invalid_argument);
  // kAuto degrades to direct accumulation for the level-sweep engine.
  opt.accumulation = CdfAccumulation::kAuto;
  EXPECT_NO_THROW(compute_delay_cdf(g, opt));
}

TEST(DelayCdf, UnconvergedDiameterIsSentinel) {
  // 5-hop chain with strictly increasing contact times, truncated at
  // max_levels = 3: pairs needing 4-5 hops are reachable by flooding
  // beyond the evaluated budgets, so no k <= max_hops satisfies the
  // criterion and the old fixpoint_hops fallback would have silently
  // understated the diameter.
  TemporalGraph g(6, {{0, 1, 0.0, 1.0},
                      {1, 2, 2.0, 3.0},
                      {2, 3, 4.0, 5.0},
                      {3, 4, 6.0, 7.0},
                      {4, 5, 8.0, 9.0}});
  auto opt = base_options();
  opt.max_hops = 2;
  opt.max_levels = 3;
  const auto r = compute_delay_cdf(g, opt);
  ASSERT_FALSE(r.converged);
  EXPECT_EQ(r.diameter(0.01), DelayCdfResult::kUnknownDiameter);
  EXPECT_EQ(r.diameter_absolute(0.01), DelayCdfResult::kUnknownDiameter);
  // A criterion every evaluated budget satisfies still resolves: with
  // eps = 1 the very first hop budget qualifies.
  EXPECT_EQ(r.diameter(1.0), 1);

  // The same network without truncation names the true diameter.
  opt.max_levels = 64;
  opt.max_hops = 6;
  const auto full = compute_delay_cdf(g, opt);
  ASSERT_TRUE(full.converged);
  EXPECT_EQ(full.fixpoint_hops, 5);
  EXPECT_NE(full.diameter(0.01), DelayCdfResult::kUnknownDiameter);
}

TEST(DelayCdf, SingleThreadAndMultiThreadAgree) {
  Rng rng(31);
  std::vector<Contact> contacts;
  for (int i = 0; i < 100; ++i) {
    const auto u = static_cast<NodeId>(rng.below(9));
    auto v = static_cast<NodeId>(rng.below(8));
    if (v >= u) ++v;
    const double b = rng.uniform(0, 70);
    contacts.push_back({u, v, b, b + rng.uniform(0, 4)});
  }
  TemporalGraph g(9, std::move(contacts));
  auto opt1 = base_options();
  opt1.num_threads = 1;
  const auto r1 = compute_delay_cdf(g, opt1);
  // The canonical ascending-index fold makes this BIT-identical, not
  // merely close: per-source partials are integrated into zeroed
  // scratch accumulators and merged in one fixed left chain no matter
  // which worker produced them (see core/source_cdf.hpp).
  for (const unsigned threads : {2u, 3u, 4u}) {
    auto optn = base_options();
    optn.num_threads = threads;
    const auto rn = compute_delay_cdf(g, optn);
    ASSERT_EQ(r1.cdf_by_hops.size(), rn.cdf_by_hops.size());
    for (std::size_t k = 0; k < r1.cdf_by_hops.size(); ++k)
      ASSERT_EQ(r1.cdf_by_hops[k], rn.cdf_by_hops[k])
          << threads << " threads, hop budget " << k + 1;
    ASSERT_EQ(r1.cdf_unbounded, rn.cdf_unbounded) << threads << " threads";
    EXPECT_EQ(r1.denominator, rn.denominator);
    EXPECT_EQ(r1.fixpoint_hops, rn.fixpoint_hops);
    EXPECT_EQ(r1.converged, rn.converged);
  }
}

}  // namespace
}  // namespace odtn
