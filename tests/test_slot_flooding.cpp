#include "random/slot_flooding.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace odtn {
namespace {

using Edges = std::vector<std::pair<NodeId, NodeId>>;

TEST(SlotFlooding, SourceSeeded) {
  SlotFloodProcess p(5, 1.0, ContactCase::kShort, 2, Rng(1));
  EXPECT_EQ(p.min_hops()[2], 0);
  EXPECT_FALSE(p.reached(0));
  EXPECT_TRUE(p.reached(2));
}

TEST(SlotFlooding, ShortCaseOneHopPerSlot) {
  SlotFloodProcess p(4, 1.0, ContactCase::kShort, 0, Rng(1));
  // A full chain 0-1-2-3 in one slot: short contacts cross only one hop.
  p.step_with_edges({{0, 1}, {1, 2}, {2, 3}});
  EXPECT_EQ(p.min_hops()[1], 1);
  EXPECT_FALSE(p.reached(2));
  EXPECT_FALSE(p.reached(3));
  // Repeat the same edges next slot: one more hop.
  p.step_with_edges({{0, 1}, {1, 2}, {2, 3}});
  EXPECT_EQ(p.min_hops()[2], 2);
  EXPECT_FALSE(p.reached(3));
}

TEST(SlotFlooding, LongCaseChainsWithinSlot) {
  SlotFloodProcess p(4, 1.0, ContactCase::kLong, 0, Rng(1));
  p.step_with_edges({{2, 3}, {1, 2}, {0, 1}});  // order must not matter
  EXPECT_EQ(p.min_hops()[1], 1);
  EXPECT_EQ(p.min_hops()[2], 2);
  EXPECT_EQ(p.min_hops()[3], 3);
  EXPECT_EQ(p.slots(), 1u);
}

TEST(SlotFlooding, MinHopsNeverIncreases) {
  SlotFloodProcess p(4, 1.0, ContactCase::kShort, 0, Rng(1));
  p.step_with_edges({{0, 1}, {1, 2}});
  p.step_with_edges({{1, 2}});
  EXPECT_EQ(p.min_hops()[2], 2);
  // A later direct contact improves the hop count.
  p.step_with_edges({{0, 2}});
  EXPECT_EQ(p.min_hops()[2], 1);
}

TEST(SlotFlooding, EdgesAreBidirectional) {
  SlotFloodProcess p(3, 1.0, ContactCase::kShort, 2, Rng(1));
  p.step_with_edges({{0, 2}});  // pair listed with source second
  EXPECT_EQ(p.min_hops()[0], 1);
}

TEST(SlotFlooding, RandomStepProducesPlausibleEdgeCounts) {
  const std::size_t n = 80;
  const double lambda = 2.0;
  SlotFloodProcess p(n, lambda, ContactCase::kShort, 0, Rng(33));
  double total = 0;
  const int slots = 500;
  for (int s = 0; s < slots; ++s) total += static_cast<double>(p.step());
  const double expected = lambda * (n - 1) / 2.0;  // per slot
  EXPECT_NEAR(total / slots, expected, 0.15 * expected);
}

TEST(SlotFlooding, EventuallyReachesEveryone) {
  SlotFloodProcess p(30, 1.0, ContactCase::kShort, 0, Rng(9));
  for (int s = 0; s < 400 ; ++s) p.step();
  for (NodeId v = 0; v < 30; ++v) EXPECT_TRUE(p.reached(v)) << "v=" << v;
}

TEST(SlotFlooding, InvalidArguments) {
  EXPECT_THROW(SlotFloodProcess(1, 1.0, ContactCase::kShort, 0, Rng(1)),
               std::invalid_argument);
  EXPECT_THROW(SlotFloodProcess(5, 1.0, ContactCase::kShort, 7, Rng(1)),
               std::out_of_range);
}

}  // namespace
}  // namespace odtn
