#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace odtn {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++equal;
  EXPECT_LT(equal, 2);
}

TEST(Rng, ZeroSeedWorks) {
  Rng r(0);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 100; ++i) seen.insert(r.next_u64());
  EXPECT_GT(seen.size(), 95u);  // not stuck
}

TEST(Rng, DoubleInUnitInterval) {
  Rng r(7);
  double lo = 1.0, hi = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double x = r.next_double();
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
    lo = std::min(lo, x);
    hi = std::max(hi, x);
  }
  EXPECT_LT(lo, 0.01);
  EXPECT_GT(hi, 0.99);
}

TEST(Rng, UniformRespectsBounds) {
  Rng r(9);
  for (int i = 0; i < 1000; ++i) {
    const double x = r.uniform(-3.0, 5.0);
    ASSERT_GE(x, -3.0);
    ASSERT_LT(x, 5.0);
  }
}

TEST(Rng, BelowIsInRangeAndCoversAll) {
  Rng r(11);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 10000; ++i) {
    const auto v = r.below(10);
    ASSERT_LT(v, 10u);
    ++counts[v];
  }
  for (int c : counts) EXPECT_GT(c, 800);  // roughly uniform
}

TEST(Rng, BelowOneIsAlwaysZero) {
  Rng r(13);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(r.below(1), 0u);
}

TEST(Rng, BernoulliExtremes) {
  Rng r(17);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.bernoulli(0.0));
    EXPECT_TRUE(r.bernoulli(1.0));
  }
}

TEST(Rng, BernoulliFrequency) {
  Rng r(19);
  int hits = 0;
  for (int i = 0; i < 100000; ++i)
    if (r.bernoulli(0.3)) ++hits;
  EXPECT_NEAR(hits / 100000.0, 0.3, 0.01);
}

TEST(Rng, SplitStreamsAreIndependentish) {
  Rng parent(23);
  Rng child = parent.split();
  int equal = 0;
  for (int i = 0; i < 64; ++i)
    if (parent.next_u64() == child.next_u64()) ++equal;
  EXPECT_LT(equal, 2);
}

TEST(Rng, CopyForksTheStream) {
  Rng a(29);
  a.next_u64();
  Rng b = a;  // value semantics: identical continuation
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

}  // namespace
}  // namespace odtn
