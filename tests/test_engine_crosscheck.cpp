// Property-based cross-checks of the Pareto-pair engine against two
// independent implementations: direct flooding at sampled start times,
// and the flooding-per-boundary baseline (the paper's comparator [8]).
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "core/optimal_paths.hpp"
#include "random/contact_process.hpp"
#include "random/random_temporal_network.hpp"
#include "sim/flooding.hpp"
#include "trace/wlan_generator.hpp"
#include "sim/profile_baseline.hpp"
#include "util/rng.hpp"

namespace odtn {
namespace {

/// Random trace with overlapping contacts, zero-duration contacts, and
/// boundary coincidences (integer-ish times), to stress edge cases.
/// `time_shift` moves every timestamp (negative shifts exercise the
/// all-negative-time regime of epoch-shifted imports).
TemporalGraph random_trace(Rng& rng, std::size_t nodes,
                           std::size_t num_contacts, double horizon,
                           bool directed = false, double time_shift = 0.0) {
  std::vector<Contact> contacts;
  contacts.reserve(num_contacts);
  for (std::size_t i = 0; i < num_contacts; ++i) {
    const auto u = static_cast<NodeId>(rng.below(nodes));
    auto v = static_cast<NodeId>(rng.below(nodes - 1));
    if (v >= u) ++v;
    // Quantize to integers so begin/end coincidences are common.
    const double begin = std::floor(rng.uniform(0.0, horizon)) + time_shift;
    const double extra =
        rng.bernoulli(0.2) ? 0.0 : std::floor(rng.uniform(1.0, horizon / 4));
    contacts.push_back({u, v, begin, begin + extra});
  }
  return TemporalGraph(nodes, std::move(contacts), directed);
}

/// Steps the indexed engine and the level-sweep reference side by side
/// and requires identical frontiers at EVERY hop level, plus agreement
/// with flood() arrivals at sampled start times at every hop budget.
void expect_modes_and_flooding_agree(const TemporalGraph& g, NodeId src,
                                     Rng& rng, double t_lo, double t_hi) {
  SingleSourceEngine indexed(g, src, EngineMode::kIndexed);
  SingleSourceEngine sweep(g, src, EngineMode::kLevelSweep);
  for (int hops = 1; hops <= 64; ++hops) {
    const bool indexed_grew = indexed.step();
    const bool sweep_grew = sweep.step();
    ASSERT_EQ(indexed_grew, sweep_grew) << "src=" << src << " hops=" << hops;
    ASSERT_EQ(indexed.hops(), sweep.hops());
    for (NodeId dst = 0; dst < g.num_nodes(); ++dst) {
      ASSERT_EQ(indexed.frontier(dst), sweep.frontier(dst))
          << "src=" << src << " dst=" << dst << " hops=" << hops;
    }
    for (int q = 0; q < 10; ++q) {
      const double t0 = rng.uniform(t_lo, t_hi);
      const FloodingResult fr = flood(g, src, t0, indexed.hops());
      for (NodeId dst = 0; dst < g.num_nodes(); ++dst) {
        ASSERT_EQ(indexed.frontier(dst).deliver_at(t0),
                  fr.arrival_with_hops(dst, indexed.hops()))
            << "src=" << src << " dst=" << dst << " t0=" << t0
            << " hops=" << indexed.hops();
      }
    }
    if (!indexed_grew) break;
  }
  ASSERT_TRUE(indexed.at_fixpoint());
  ASSERT_TRUE(sweep.at_fixpoint());
}

struct CrosscheckParam {
  std::uint64_t seed;
  std::size_t nodes;
  std::size_t contacts;
};

class EngineCrosscheck : public ::testing::TestWithParam<CrosscheckParam> {};

TEST_P(EngineCrosscheck, MatchesFloodingAtSampledTimes) {
  const auto param = GetParam();
  Rng rng(param.seed);
  const TemporalGraph g =
      random_trace(rng, param.nodes, param.contacts, 100.0);

  for (NodeId src = 0; src < std::min<std::size_t>(g.num_nodes(), 4); ++src) {
    SingleSourceEngine engine(g, src);
    for (int hops = 1; hops <= 6; ++hops) {
      engine.step();
      // Compare del(t0) for random and boundary start times.
      for (int q = 0; q < 40; ++q) {
        double t0;
        if (q % 3 == 0 && g.num_contacts() > 0) {
          const Contact& c = g.contacts()[rng.below(g.num_contacts())];
          t0 = (q % 2 == 0) ? c.begin : c.end;
        } else {
          t0 = rng.uniform(-5.0, 110.0);
        }
        const FloodingResult fr = flood(g, src, t0, hops);
        for (NodeId dst = 0; dst < g.num_nodes(); ++dst) {
          ASSERT_EQ(engine.frontier(dst).deliver_at(t0),
                    fr.arrival_with_hops(dst, hops))
              << "src=" << src << " dst=" << dst << " t0=" << t0
              << " hops=" << hops;
        }
      }
    }
  }
}

TEST_P(EngineCrosscheck, MatchesFloodingPerBoundaryBaseline) {
  const auto param = GetParam();
  Rng rng(param.seed ^ 0x5A5A5A5A);
  const TemporalGraph g =
      random_trace(rng, param.nodes, param.contacts, 60.0);

  const NodeId src = 0;
  SingleSourceEngine engine(g, src);
  engine.run_to_fixpoint();
  const SampledProfiles baseline = profiles_by_flooding(g, src);
  for (NodeId dst = 0; dst < g.num_nodes(); ++dst) {
    for (std::size_t i = 0; i < baseline.times.size(); ++i) {
      ASSERT_EQ(engine.frontier(dst).deliver_at(baseline.times[i]),
                baseline.arrival[dst][i])
          << "dst=" << dst << " t0=" << baseline.times[i];
    }
  }
}

TEST_P(EngineCrosscheck, UnboundedEqualsLargeHopFlooding) {
  const auto param = GetParam();
  Rng rng(param.seed ^ 0x1234);
  const TemporalGraph g =
      random_trace(rng, param.nodes, param.contacts, 80.0);
  SingleSourceEngine engine(g, 0);
  const int fixpoint = engine.run_to_fixpoint();
  EXPECT_LE(fixpoint, 64);
  for (int q = 0; q < 25; ++q) {
    const double t0 = rng.uniform(0.0, 90.0);
    const FloodingResult fr = flood(g, 0, t0);
    for (NodeId dst = 0; dst < g.num_nodes(); ++dst)
      ASSERT_EQ(engine.frontier(dst).deliver_at(t0), fr.best_arrival(dst));
  }
}

TEST_P(EngineCrosscheck, IndexedMatchesLevelSweepUndirected) {
  const auto param = GetParam();
  Rng rng(param.seed ^ 0xD1EDC0DE);
  const TemporalGraph g =
      random_trace(rng, param.nodes, param.contacts, 100.0);
  for (NodeId src = 0; src < std::min<std::size_t>(g.num_nodes(), 3); ++src)
    expect_modes_and_flooding_agree(g, src, rng, -5.0, 110.0);
}

TEST_P(EngineCrosscheck, IndexedMatchesLevelSweepDirected) {
  const auto param = GetParam();
  Rng rng(param.seed ^ 0xD1AEC7ED);
  const TemporalGraph g = random_trace(rng, param.nodes, param.contacts,
                                       100.0, /*directed=*/true);
  for (NodeId src = 0; src < std::min<std::size_t>(g.num_nodes(), 3); ++src)
    expect_modes_and_flooding_agree(g, src, rng, -5.0, 110.0);
}

TEST_P(EngineCrosscheck, IndexedMatchesLevelSweepNegativeTimes) {
  const auto param = GetParam();
  Rng rng(param.seed ^ 0x4E6A71E5);
  // All timestamps strictly negative (epoch-shifted import regime).
  const TemporalGraph g =
      random_trace(rng, param.nodes, param.contacts, 100.0,
                   /*directed=*/false, /*time_shift=*/-1000.0);
  ASSERT_LT(g.end_time(), 0.0);
  for (NodeId src = 0; src < std::min<std::size_t>(g.num_nodes(), 3); ++src)
    expect_modes_and_flooding_agree(g, src, rng, -1005.0, -890.0);
}

TEST_P(EngineCrosscheck, DirectedNegativeTimeMatchesFlooding) {
  const auto param = GetParam();
  Rng rng(param.seed ^ 0xBADCAFE);
  const TemporalGraph g =
      random_trace(rng, param.nodes, param.contacts, 100.0,
                   /*directed=*/true, /*time_shift=*/-500.0);
  for (NodeId src = 0; src < std::min<std::size_t>(g.num_nodes(), 3); ++src)
    expect_modes_and_flooding_agree(g, src, rng, -505.0, -390.0);
}

INSTANTIATE_TEST_SUITE_P(
    RandomTraces, EngineCrosscheck,
    ::testing::Values(CrosscheckParam{1, 5, 15}, CrosscheckParam{2, 8, 40},
                      CrosscheckParam{3, 10, 80}, CrosscheckParam{4, 6, 25},
                      CrosscheckParam{5, 12, 120}, CrosscheckParam{6, 4, 60},
                      CrosscheckParam{7, 15, 150},
                      CrosscheckParam{8, 10, 10}));

// The engine must agree with flooding on every renewal-law substrate
// (deterministic gaps produce many exactly-coincident timestamps, the
// heavy-tailed law produces extreme gap ratios).
class EngineCrosscheckRenewal
    : public ::testing::TestWithParam<InterContactLaw> {};

TEST_P(EngineCrosscheckRenewal, MatchesFloodingOnRenewalGraphs) {
  Rng rng(0xC0FFEE);
  ContactProcessOptions options;
  options.renewal.law = GetParam();
  const TemporalGraph g =
      make_contact_process_graph(10, 1.2, 60.0, options, rng);
  SingleSourceEngine engine(g, 0);
  engine.run_to_fixpoint();
  for (int q = 0; q < 25; ++q) {
    const double t0 = rng.uniform(0.0, 70.0);
    const FloodingResult fr = flood(g, 0, t0);
    for (NodeId dst = 0; dst < g.num_nodes(); ++dst)
      ASSERT_EQ(engine.frontier(dst).deliver_at(t0), fr.best_arrival(dst))
          << inter_contact_law_name(GetParam()) << " t0=" << t0;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Laws, EngineCrosscheckRenewal,
    ::testing::Values(InterContactLaw::kExponential,
                      InterContactLaw::kDeterministic,
                      InterContactLaw::kUniform,
                      InterContactLaw::kHyperExponential,
                      InterContactLaw::kBoundedPareto),
    [](const auto& param_info) {
      std::string name = inter_contact_law_name(param_info.param);
      name.erase(std::remove(name.begin(), name.end(), '-'), name.end());
      return name;
    });

// And on WLAN association traces (long overlapping intervals).
TEST(EngineCrosscheck, WlanAssociationTrace) {
  WlanTraceSpec spec;
  spec.num_devices = 15;
  spec.num_access_points = 5;
  spec.duration = 2 * 86400.0;
  spec.sessions_per_day = 8.0;
  const auto trace = generate_wlan_trace(spec, 55);
  const auto& g = trace.graph;
  Rng rng(56);
  SingleSourceEngine engine(g, 2);
  engine.run_to_fixpoint();
  for (int q = 0; q < 20; ++q) {
    const double t0 = rng.uniform(g.start_time(), g.end_time());
    const FloodingResult fr = flood(g, 2, t0);
    for (NodeId dst = 0; dst < g.num_nodes(); ++dst)
      ASSERT_EQ(engine.frontier(dst).deliver_at(t0), fr.best_arrival(dst));
  }
}

// The engine must also agree with flooding on the *continuous-time*
// random model (zero-duration contacts).
TEST(EngineCrosscheck, ContinuousTimeModel) {
  Rng rng(99);
  const TemporalGraph g = make_continuous_random_temporal_graph(12, 1.5,
                                                                40.0, rng);
  SingleSourceEngine engine(g, 0);
  engine.run_to_fixpoint();
  for (int q = 0; q < 30; ++q) {
    const double t0 = rng.uniform(0.0, 45.0);
    const FloodingResult fr = flood(g, 0, t0);
    for (NodeId dst = 0; dst < g.num_nodes(); ++dst)
      ASSERT_EQ(engine.frontier(dst).deliver_at(t0), fr.best_arrival(dst));
  }
}

}  // namespace
}  // namespace odtn
