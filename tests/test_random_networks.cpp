#include "random/random_temporal_network.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include <set>

#include "stats/summary.hpp"
#include "util/rng.hpp"

namespace odtn {
namespace {

TEST(PairCodec, RoundTripAllPairs) {
  for (std::size_t n : {2u, 3u, 7u, 50u, 101u}) {
    for (std::size_t i = 0; i < num_pairs(n); ++i) {
      const auto [u, v] = decode_pair(i, n);
      ASSERT_LT(u, v);
      ASSERT_LT(v, n);
      ASSERT_EQ(encode_pair(u, v, n), i) << "n=" << n << " i=" << i;
      ASSERT_EQ(encode_pair(v, u, n), i);  // order-insensitive
    }
  }
}

TEST(PairCodec, EnumerationIsBijective) {
  const std::size_t n = 20;
  std::set<std::pair<NodeId, NodeId>> seen;
  for (std::size_t i = 0; i < num_pairs(n); ++i) seen.insert(decode_pair(i, n));
  EXPECT_EQ(seen.size(), num_pairs(n));
}

class SlotEdgesSeeded : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SlotEdgesSeeded, EdgeCountMatchesExpectation) {
  Rng rng(GetParam());
  const std::size_t n = 60;
  const double p = 0.02;
  SummaryStats counts;
  for (int s = 0; s < 3000; ++s)
    counts.add(static_cast<double>(sample_slot_edges(n, p, rng).size()));
  const double expected = p * static_cast<double>(num_pairs(n));
  EXPECT_NEAR(counts.mean(), expected, 5.0 * counts.stderr_mean());
}

TEST_P(SlotEdgesSeeded, EdgesAreValidAndDistinct) {
  Rng rng(GetParam() + 1);
  const auto edges = sample_slot_edges(30, 0.3, rng);
  std::set<std::pair<NodeId, NodeId>> seen;
  for (const auto& [u, v] : edges) {
    ASSERT_LT(u, v);
    ASSERT_LT(v, 30u);
    ASSERT_TRUE(seen.insert({u, v}).second) << "duplicate edge";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SlotEdgesSeeded,
                         ::testing::Values(11u, 222u, 3333u));

TEST(SlotEdges, ExtremeProbabilities) {
  Rng rng(1);
  EXPECT_TRUE(sample_slot_edges(10, 0.0, rng).empty());
  EXPECT_EQ(sample_slot_edges(10, 1.0, rng).size(), num_pairs(10));
  EXPECT_TRUE(sample_slot_edges(1, 0.5, rng).empty());
}

TEST(DiscreteModel, ContactsLiveInsideSlots) {
  Rng rng(5);
  const auto g = make_discrete_random_temporal_graph(20, 2.0, 15, rng);
  for (const Contact& c : g.contacts()) {
    const double slot = std::floor(c.begin);
    EXPECT_DOUBLE_EQ(c.begin, slot);
    EXPECT_DOUBLE_EQ(c.end, slot + 0.5);  // slots never touch
    EXPECT_LT(slot, 15.0);
  }
}

TEST(DiscreteModel, ContactVolumeMatchesLambda) {
  Rng rng(6);
  const std::size_t n = 100, slots = 200;
  const double lambda = 1.5;
  const auto g = make_discrete_random_temporal_graph(n, lambda, slots, rng);
  // E[contacts] = slots * p * num_pairs = slots * lambda * (n-1) / 2.
  const double expected = slots * lambda * (n - 1) / 2.0;
  EXPECT_NEAR(static_cast<double>(g.num_contacts()), expected,
              5.0 * std::sqrt(expected));
}

TEST(ContinuousModel, ZeroDurationPoissonContacts) {
  Rng rng(7);
  const std::size_t n = 40;
  const double lambda = 1.0, duration = 200.0;
  const auto g = make_continuous_random_temporal_graph(n, lambda, duration,
                                                       rng);
  for (const Contact& c : g.contacts()) {
    EXPECT_DOUBLE_EQ(c.duration(), 0.0);
    EXPECT_GE(c.begin, 0.0);
    EXPECT_LE(c.begin, duration);
  }
  // E[contacts] = duration * (lambda/n) * num_pairs.
  const double expected = duration * lambda / n * num_pairs(n);
  EXPECT_NEAR(static_cast<double>(g.num_contacts()), expected,
              5.0 * std::sqrt(expected));
}

TEST(ContinuousModel, PerNodeContactRateIsLambda) {
  Rng rng(8);
  const double lambda = 2.0;
  const auto g = make_continuous_random_temporal_graph(50, lambda, 500.0, rng);
  // contact_rate counts both endpoints per contact per unit time:
  // n * (n-1)/2 pairs * lambda/n each * 2 endpoints / n = lambda*(n-1)/n.
  EXPECT_NEAR(g.contact_rate(1.0), lambda * 49.0 / 50.0, 0.1);
}

TEST(Generators, RejectDegenerateArguments) {
  Rng rng(9);
  EXPECT_THROW(make_discrete_random_temporal_graph(1, 1.0, 5, rng),
               std::invalid_argument);
  EXPECT_THROW(make_continuous_random_temporal_graph(2, 1.0, -1.0, rng),
               std::invalid_argument);
}

}  // namespace
}  // namespace odtn
