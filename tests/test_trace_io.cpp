#include "trace/trace_io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "trace/generators.hpp"
#include "util/time_format.hpp"

namespace odtn {
namespace {

TEST(TraceIo, RoundTripPreservesEverything) {
  SyntheticTraceSpec spec;
  spec.num_internal = 12;
  spec.duration = kDay;
  spec.pair_contacts_mean = 5.0;
  const auto original = generate_trace(spec, 3).graph;

  std::stringstream buffer;
  write_trace(buffer, original);
  const auto restored = read_trace(buffer);

  EXPECT_EQ(restored.num_nodes(), original.num_nodes());
  EXPECT_EQ(restored.directed(), original.directed());
  EXPECT_EQ(restored.contacts(), original.contacts());
}

TEST(TraceIo, DirectedFlagRoundTrips) {
  TemporalGraph g(3, {{0, 1, 1.0, 2.0}}, /*directed=*/true);
  std::stringstream buffer;
  write_trace(buffer, g);
  EXPECT_TRUE(read_trace(buffer).directed());
}

TEST(TraceIo, ParsesHandWrittenInput) {
  std::istringstream in(
      "# odtn-trace v1\n"
      "# nodes 3\n"
      "\n"
      "# a comment\n"
      "0 1 10.5 20.25\n"
      "1 2 30 40\n");
  const auto g = read_trace(in);
  EXPECT_EQ(g.num_nodes(), 3u);
  ASSERT_EQ(g.num_contacts(), 2u);
  EXPECT_DOUBLE_EQ(g.contacts()[0].begin, 10.5);
}

TEST(TraceIo, WindowsLineEndingsAccepted) {
  std::istringstream in(
      "# odtn-trace v1\r\n# nodes 2\r\n0 1 0 1\r\n");
  EXPECT_EQ(read_trace(in).num_contacts(), 1u);
}

TEST(TraceIo, ErrorsCarryLineNumbers) {
  std::istringstream missing_magic("0 1 0 1\n");
  EXPECT_THROW(read_trace(missing_magic), std::runtime_error);

  std::istringstream missing_nodes("# odtn-trace v1\n0 1 0 1\n");
  EXPECT_THROW(read_trace(missing_nodes), std::runtime_error);

  std::istringstream bad_row("# odtn-trace v1\n# nodes 2\n0 1 zero 1\n");
  try {
    read_trace(bad_row);
    FAIL() << "expected parse error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos);
  }
}

TEST(TraceIo, RejectsOutOfRangeNodes) {
  std::istringstream in("# odtn-trace v1\n# nodes 2\n0 5 0 1\n");
  EXPECT_THROW(read_trace(in), std::runtime_error);
}

TEST(TraceIo, RejectsReversedInterval) {
  std::istringstream in("# odtn-trace v1\n# nodes 2\n0 1 5 1\n");
  EXPECT_THROW(read_trace(in), std::runtime_error);
}

TEST(TraceIo, RejectsTrailingGarbage) {
  std::istringstream in("# odtn-trace v1\n# nodes 2\n0 1 0 1 extra\n");
  EXPECT_THROW(read_trace(in), std::runtime_error);
}

TEST(TraceIo, RejectsEmptyInput) {
  std::istringstream in("");
  EXPECT_THROW(read_trace(in), std::runtime_error);
}

TEST(TraceIo, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/odtn_trace_test.txt";
  TemporalGraph g(2, {{0, 1, 1.25, 2.75}});
  write_trace_file(path, g);
  const auto restored = read_trace_file(path);
  EXPECT_EQ(restored.contacts(), g.contacts());
  std::remove(path.c_str());
}

TEST(TraceIo, MissingFileThrows) {
  EXPECT_THROW(read_trace_file("/no/such/file.txt"), std::runtime_error);
  TemporalGraph g(2, {});
  EXPECT_THROW(write_trace_file("/no/such/dir/out.txt", g),
               std::runtime_error);
}

}  // namespace
}  // namespace odtn
