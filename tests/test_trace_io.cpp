#include "trace/trace_io.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "trace/generators.hpp"
#include "util/time_format.hpp"

namespace odtn {
namespace {

TEST(TraceIo, RoundTripPreservesEverything) {
  SyntheticTraceSpec spec;
  spec.num_internal = 12;
  spec.duration = kDay;
  spec.pair_contacts_mean = 5.0;
  const auto original = generate_trace(spec, 3).graph;

  std::stringstream buffer;
  write_trace(buffer, original);
  const auto restored = read_trace(buffer);

  EXPECT_EQ(restored.num_nodes(), original.num_nodes());
  EXPECT_EQ(restored.directed(), original.directed());
  EXPECT_TRUE(std::ranges::equal(restored.contacts(), original.contacts()));
}

TEST(TraceIo, DirectedFlagRoundTrips) {
  TemporalGraph g(3, {{0, 1, 1.0, 2.0}}, /*directed=*/true);
  std::stringstream buffer;
  write_trace(buffer, g);
  EXPECT_TRUE(read_trace(buffer).directed());
}

TEST(TraceIo, ParsesHandWrittenInput) {
  std::istringstream in(
      "# odtn-trace v1\n"
      "# nodes 3\n"
      "\n"
      "# a comment\n"
      "0 1 10.5 20.25\n"
      "1 2 30 40\n");
  const auto g = read_trace(in);
  EXPECT_EQ(g.num_nodes(), 3u);
  ASSERT_EQ(g.num_contacts(), 2u);
  EXPECT_DOUBLE_EQ(g.contacts()[0].begin, 10.5);
}

TEST(TraceIo, WindowsLineEndingsAccepted) {
  std::istringstream in(
      "# odtn-trace v1\r\n# nodes 2\r\n0 1 0 1\r\n");
  EXPECT_EQ(read_trace(in).num_contacts(), 1u);
}

TEST(TraceIo, ErrorsCarryLineNumbers) {
  std::istringstream missing_magic("0 1 0 1\n");
  EXPECT_THROW(read_trace(missing_magic), std::runtime_error);

  std::istringstream missing_nodes("# odtn-trace v1\n0 1 0 1\n");
  EXPECT_THROW(read_trace(missing_nodes), std::runtime_error);

  std::istringstream bad_row("# odtn-trace v1\n# nodes 2\n0 1 zero 1\n");
  try {
    read_trace(bad_row);
    FAIL() << "expected parse error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos);
  }
}

TEST(TraceIo, RejectsOutOfRangeNodes) {
  std::istringstream in("# odtn-trace v1\n# nodes 2\n0 5 0 1\n");
  EXPECT_THROW(read_trace(in), std::runtime_error);
}

TEST(TraceIo, RejectsReversedInterval) {
  std::istringstream in("# odtn-trace v1\n# nodes 2\n0 1 5 1\n");
  EXPECT_THROW(read_trace(in), std::runtime_error);
}

TEST(TraceIo, RejectsTrailingGarbage) {
  std::istringstream in("# odtn-trace v1\n# nodes 2\n0 1 0 1 extra\n");
  EXPECT_THROW(read_trace(in), std::runtime_error);
}

TEST(TraceIo, RejectsEmptyInput) {
  std::istringstream in("");
  EXPECT_THROW(read_trace(in), std::runtime_error);
}

TEST(TraceIo, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/odtn_trace_test.txt";
  TemporalGraph g(2, {{0, 1, 1.25, 2.75}});
  write_trace_file(path, g);
  const auto restored = read_trace_file(path);
  EXPECT_TRUE(std::ranges::equal(restored.contacts(), g.contacts()));
  std::remove(path.c_str());
}

TEST(TraceIo, MissingFileThrows) {
  EXPECT_THROW(read_trace_file("/no/such/file.txt"), std::runtime_error);
  TemporalGraph g(2, {});
  EXPECT_THROW(write_trace_file("/no/such/dir/out.txt", g),
               std::runtime_error);
}

// ---- Structured diagnostics (TraceError taxonomy) ----

/// Parses `text` in strict mode and returns the diagnostic it raises.
TraceDiagnostic strict_failure(const std::string& text) {
  std::istringstream in(text);
  try {
    read_trace(in);
  } catch (const TraceError& e) {
    return e.diagnostic();
  }
  ADD_FAILURE() << "expected TraceError for: " << text;
  return {};
}

TEST(TraceErrors, CodesLinesAndColumns) {
  const auto bad_field =
      strict_failure("# odtn-trace v1\n# nodes 2\n0 1 zero 1\n");
  EXPECT_EQ(bad_field.code, TraceErrorCode::kBadContactSyntax);
  EXPECT_EQ(bad_field.line, 3u);
  EXPECT_EQ(bad_field.column, 5u);  // points at the 'zero' token
  EXPECT_EQ(bad_field.excerpt, "0 1 zero 1");

  const auto trailing =
      strict_failure("# odtn-trace v1\n# nodes 2\n0 1 0 1 junk\n");
  EXPECT_EQ(trailing.code, TraceErrorCode::kTrailingData);
  EXPECT_EQ(trailing.line, 3u);
  EXPECT_EQ(trailing.column, 9u);

  EXPECT_EQ(strict_failure("").code, TraceErrorCode::kEmptyInput);
  EXPECT_EQ(strict_failure("0 1 0 1\n").code, TraceErrorCode::kMissingMagic);
  EXPECT_EQ(strict_failure("# odtn-trace v1\n0 1 0 1\n").code,
            TraceErrorCode::kMissingNodesHeader);
  EXPECT_EQ(strict_failure("# odtn-trace v1\n# just a comment\n").code,
            TraceErrorCode::kMissingNodesHeader);
  EXPECT_EQ(strict_failure("# odtn-trace v1\n# nodes 2\n0 5 0 1\n").code,
            TraceErrorCode::kNodeOutOfRange);
  EXPECT_EQ(strict_failure("# odtn-trace v1\n# nodes 2\n0 1 5 1\n").code,
            TraceErrorCode::kMalformedContact);
  EXPECT_EQ(strict_failure("# odtn-trace v1\n# nodes 2\n1 1 0 1\n").code,
            TraceErrorCode::kMalformedContact);
}

TEST(TraceErrors, WhatStringIsHumanReadable) {
  std::istringstream in("# odtn-trace v1\n# nodes 2\n0 1 zero 1\n");
  try {
    read_trace(in);
    FAIL() << "expected TraceError";
  } catch (const TraceError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("bad-contact-syntax"), std::string::npos) << what;
    EXPECT_NE(what.find("line 3"), std::string::npos) << what;
    EXPECT_NE(what.find("0 1 zero 1"), std::string::npos) << what;
  }
}

TEST(TraceErrors, RejectsBadVersionStrings) {
  const auto v2 = strict_failure("# odtn-trace v2\n# nodes 2\n0 1 0 1\n");
  EXPECT_EQ(v2.code, TraceErrorCode::kUnsupportedVersion);
  EXPECT_EQ(v2.line, 1u);
  EXPECT_EQ(strict_failure("# odtn-trace\n# nodes 2\n").code,
            TraceErrorCode::kUnsupportedVersion);
  EXPECT_EQ(strict_failure("# odtn-trace 1\n# nodes 2\n").code,
            TraceErrorCode::kUnsupportedVersion);
}

TEST(TraceErrors, RejectsDuplicateAndConflictingHeaders) {
  EXPECT_EQ(strict_failure("# odtn-trace v1\n# nodes 2\n# nodes 2\n").code,
            TraceErrorCode::kDuplicateHeader);
  // A conflicting repeat is just as dead: first value wins in lenient,
  // strict refuses outright.
  EXPECT_EQ(strict_failure("# odtn-trace v1\n# nodes 2\n# nodes 9\n").code,
            TraceErrorCode::kDuplicateHeader);
  EXPECT_EQ(strict_failure("# odtn-trace v1\n# odtn-trace v1\n").code,
            TraceErrorCode::kDuplicateHeader);
  EXPECT_EQ(
      strict_failure(
          "# odtn-trace v1\n# nodes 2\n# directed 0\n# directed 1\n")
          .code,
      TraceErrorCode::kDuplicateHeader);
}

TEST(TraceErrors, RejectsMalformedHeaders) {
  EXPECT_EQ(strict_failure("# odtn-trace v1\n# nodes 5 seven\n").code,
            TraceErrorCode::kBadHeader);
  EXPECT_EQ(strict_failure("# odtn-trace v1\n# nodes -3\n").code,
            TraceErrorCode::kBadHeader);
  EXPECT_EQ(strict_failure("# odtn-trace v1\n# nodes two\n").code,
            TraceErrorCode::kBadHeader);
  EXPECT_EQ(strict_failure("# odtn-trace v1\n# nodes 2\n# directed 2\n").code,
            TraceErrorCode::kBadHeader);
}

TEST(TraceErrors, RejectsNodeCountBeyondNodeIdRange) {
  // 2^32 node ids cannot fit NodeId (the top value is kInvalidNode).
  const auto overflow =
      strict_failure("# odtn-trace v1\n# nodes 4294967296\n");
  EXPECT_EQ(overflow.code, TraceErrorCode::kNodeCountOverflow);
  EXPECT_EQ(
      strict_failure("# odtn-trace v1\n# nodes 99999999999999999999\n").code,
      TraceErrorCode::kBadHeader);  // does not even fit unsigned long long
  // Overflow is fatal even in lenient mode: every later range check
  // would be wrong.
  std::istringstream in("# odtn-trace v1\n# nodes 4294967296\n");
  EXPECT_THROW(read_trace(in, {ParseMode::kLenient}), TraceError);
}

TEST(TraceErrors, ErrorNamesAreStable) {
  EXPECT_STREQ(trace_error_name(TraceErrorCode::kBadContactSyntax),
               "bad-contact-syntax");
  EXPECT_STREQ(trace_error_name(TraceErrorCode::kNodeCountOverflow),
               "node-count-overflow");
  EXPECT_STREQ(trace_error_name(TraceErrorCode::kUnsupportedVersion),
               "unsupported-version");
}

// ---- Lenient mode ----

TEST(TraceLenient, SkipsDefectiveRecordsAndReportsThem) {
  std::istringstream in(
      "# odtn-trace v1\n"
      "# nodes 3\n"
      "0 1 0 1\n"
      "0 1 zero 1\n"    // bad syntax
      "0 9 0 1\n"       // out of range
      "1 2 3 2\n"       // reversed interval
      "1 2 5 6 junk\n"  // trailing data
      "0 2 7 8\n");
  ParseReport report;
  const auto g = read_trace(in, {ParseMode::kLenient}, &report);
  EXPECT_EQ(g.num_contacts(), 2u);
  EXPECT_EQ(report.skipped, 4u);
  ASSERT_EQ(report.diagnostics.size(), 4u);
  EXPECT_EQ(report.diagnostics[0].code, TraceErrorCode::kBadContactSyntax);
  EXPECT_EQ(report.diagnostics[1].code, TraceErrorCode::kNodeOutOfRange);
  EXPECT_EQ(report.diagnostics[2].code, TraceErrorCode::kMalformedContact);
  EXPECT_EQ(report.diagnostics[3].code, TraceErrorCode::kTrailingData);
  EXPECT_EQ(report.diagnostics[0].line, 4u);
  EXPECT_EQ(report.diagnostics[3].line, 7u);
  EXPECT_EQ(report.contact_lines, 2u);
  EXPECT_EQ(report.lines, 8u);
}

TEST(TraceLenient, FirstHeaderWinsOnDuplicates) {
  std::istringstream in(
      "# odtn-trace v1\n# nodes 2\n# nodes 50\n# directed 1\n"
      "# directed 0\n0 1 0 1\n");
  ParseReport report;
  const auto g = read_trace(in, {ParseMode::kLenient}, &report);
  EXPECT_EQ(g.num_nodes(), 2u);
  EXPECT_TRUE(g.directed());
  EXPECT_EQ(report.skipped, 2u);
}

TEST(TraceLenient, CapsStoredDiagnostics) {
  std::string text = "# odtn-trace v1\n# nodes 2\n";
  for (int i = 0; i < 10; ++i) text += "0 1 bad 1\n";
  std::istringstream in(text);
  ParseReport report;
  ParseOptions options{ParseMode::kLenient};
  options.max_diagnostics = 3;
  read_trace(in, options, &report);
  EXPECT_EQ(report.skipped, 10u);
  EXPECT_EQ(report.diagnostics.size(), 3u);
  EXPECT_NE(report.summary().find("7 more"), std::string::npos);
}

TEST(TraceLenient, CleanTraceSkipsNothing) {
  std::istringstream in("# odtn-trace v1\n# nodes 2\n0 1 0 1\n");
  ParseReport report;
  const auto g = read_trace(in, {ParseMode::kLenient}, &report);
  EXPECT_EQ(g.num_contacts(), 1u);
  EXPECT_EQ(report.skipped, 0u);
  EXPECT_TRUE(report.diagnostics.empty());
}

// ---- Canonicalization ----

TEST(TraceCanonicalize, SortsMergesAndCrossChecks) {
  std::istringstream in(
      "# odtn-trace v1\n"
      "# nodes 8\n"
      "1 2 10 20\n"
      "0 1 0 5\n"      // out of order
      "2 1 15 30\n");  // overlaps the first record
  ParseOptions options;
  options.canonicalize = true;
  ParseReport report;
  const auto g = read_trace(in, options, &report);
  ASSERT_EQ(g.num_contacts(), 2u);
  EXPECT_EQ(g.contacts()[0], (Contact{0, 1, 0.0, 5.0}));
  EXPECT_EQ(g.contacts()[1], (Contact{1, 2, 10.0, 30.0}));
  EXPECT_TRUE(report.canonicalized);
  EXPECT_EQ(report.out_of_order, 1u);
  EXPECT_EQ(report.merged, 1u);
  EXPECT_EQ(report.contacts, 2u);
  EXPECT_EQ(report.declared_nodes, 8u);
  EXPECT_EQ(report.max_node_id, 2u);
  EXPECT_EQ(report.unused_node_ids(), 5u);
}

TEST(TraceCanonicalize, ReportsSortedInputUntouched) {
  std::istringstream in("# odtn-trace v1\n# nodes 2\n0 1 0 1\n0 1 5 6\n");
  ParseOptions options;
  options.canonicalize = true;
  ParseReport report;
  const auto g = read_trace(in, options, &report);
  EXPECT_EQ(g.num_contacts(), 2u);
  EXPECT_EQ(report.out_of_order, 0u);
  EXPECT_EQ(report.merged, 0u);
}

TEST(TraceCanonicalize, EmptyTraceReportsAllNodesUnused) {
  std::istringstream in("# odtn-trace v1\n# nodes 4\n");
  ParseOptions options;
  options.canonicalize = true;
  ParseReport report;
  read_trace(in, options, &report);
  EXPECT_EQ(report.max_node_id, kInvalidNode);
  EXPECT_EQ(report.unused_node_ids(), 4u);
}

}  // namespace
}  // namespace odtn
