#include "core/reachability.hpp"

#include <gtest/gtest.h>

#include <limits>

#include "util/time_format.hpp"

namespace odtn {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

TemporalGraph chain() {
  // 0-1 at [0,1], 1-2 at [5,6]: 0 can reach 2 while t <= 1; 2 can reach
  // 0 never (time order); 1 can reach 2 while t <= 6.
  return TemporalGraph(3, {{0, 1, 0.0, 1.0}, {1, 2, 5.0, 6.0}});
}

TEST(LastDepartureMatrix, ChainValues) {
  const auto m = last_departure_matrix(chain());
  EXPECT_DOUBLE_EQ(m[0][1], 1.0);
  EXPECT_DOUBLE_EQ(m[0][2], 1.0);   // must leave 0 before the 0-1 contact ends
  EXPECT_DOUBLE_EQ(m[1][2], 6.0);
  EXPECT_DOUBLE_EQ(m[1][0], 1.0);
  EXPECT_DOUBLE_EQ(m[2][1], 6.0);
  EXPECT_EQ(m[2][0], -kInf);        // reverse chain is not time-respecting
  EXPECT_EQ(m[0][0], kInf);         // self: always "reachable"
}

TEST(ReachabilityRatio, DecaysOverTime) {
  const auto r = reachability_ratio(chain(), {-1.0, 0.5, 2.0, 7.0});
  ASSERT_EQ(r.size(), 4u);
  // t=-1: pairs (0,1),(1,0),(0,2),(1,2),(2,1) = 5 of 6.
  EXPECT_NEAR(r[0], 5.0 / 6.0, 1e-12);
  EXPECT_NEAR(r[1], 5.0 / 6.0, 1e-12);
  // t=2: only (1,2),(2,1) remain.
  EXPECT_NEAR(r[2], 2.0 / 6.0, 1e-12);
  EXPECT_NEAR(r[3], 0.0, 1e-12);
  // Monotone non-increasing.
  for (std::size_t i = 1; i < r.size(); ++i) EXPECT_LE(r[i], r[i - 1]);
}

TEST(OutComponents, SizesMatchMatrix) {
  const auto sizes = out_component_sizes(chain(), 0.5);
  ASSERT_EQ(sizes.size(), 3u);
  EXPECT_EQ(sizes[0], 2u);  // reaches 1 and 2
  EXPECT_EQ(sizes[1], 2u);  // reaches 0 (until 1) and 2
  EXPECT_EQ(sizes[2], 1u);  // reaches only 1
  const auto late = out_component_sizes(chain(), 10.0);
  EXPECT_EQ(late[0] + late[1] + late[2], 0u);
}

TEST(DailyWindows, BasicSlicing) {
  const auto w = daily_time_windows(0.0, 3 * kDay, 9.0, 18.0);
  ASSERT_EQ(w.size(), 3u);
  EXPECT_DOUBLE_EQ(w[0].first, 9 * kHour);
  EXPECT_DOUBLE_EQ(w[0].second, 18 * kHour);
  EXPECT_DOUBLE_EQ(w[2].first, 2 * kDay + 9 * kHour);
  for (std::size_t i = 1; i < w.size(); ++i)
    EXPECT_GT(w[i].first, w[i - 1].second);
}

TEST(DailyWindows, ClipsToRange) {
  // Trace starts at noon on day 0 and ends at 10:00 on day 1.
  const auto w =
      daily_time_windows(12 * kHour, kDay + 10 * kHour, 9.0, 18.0);
  ASSERT_EQ(w.size(), 2u);
  EXPECT_DOUBLE_EQ(w[0].first, 12 * kHour);   // clipped start
  EXPECT_DOUBLE_EQ(w[0].second, 18 * kHour);
  EXPECT_DOUBLE_EQ(w[1].first, kDay + 9 * kHour);
  EXPECT_DOUBLE_EQ(w[1].second, kDay + 10 * kHour);  // clipped end
}

TEST(DailyWindows, EmptyWhenOutsideHours) {
  // Trace entirely at night.
  const auto w = daily_time_windows(0.0, 4 * kHour, 9.0, 18.0);
  EXPECT_TRUE(w.empty());
}

TEST(Degenerate, EmptyTraceReachesNobody) {
  const TemporalGraph g(4, {});
  const auto m = last_departure_matrix(g);
  for (std::size_t u = 0; u < 4; ++u)
    for (std::size_t v = 0; v < 4; ++v)
      EXPECT_EQ(m[u][v], u == v ? kInf : -kInf);
  const auto sizes = out_component_sizes(g, 0.0);
  for (const std::size_t s : sizes) EXPECT_EQ(s, 0u);  // nobody besides self
  const auto r = reachability_ratio(g, {0.0, 1.0});
  for (const double x : r) EXPECT_EQ(x, 0.0);
}

TEST(Degenerate, SingleContactOnlyLinksItsEndpoints) {
  const TemporalGraph g(3, {{0, 1, 2.0, 5.0}});
  const auto m = last_departure_matrix(g);
  EXPECT_DOUBLE_EQ(m[0][1], 5.0);
  EXPECT_DOUBLE_EQ(m[1][0], 5.0);
  EXPECT_EQ(m[0][2], -kInf);
  EXPECT_EQ(m[2][0], -kInf);
  // The contact is still open at t=3, so each endpoint reaches the
  // other (sources don't count themselves); node 2 reaches nobody.
  const auto sizes = out_component_sizes(g, 3.0);
  EXPECT_EQ(sizes[0], 1u);
  EXPECT_EQ(sizes[1], 1u);
  EXPECT_EQ(sizes[2], 0u);
}

TEST(Degenerate, SourceEqualsDestinationIsAlwaysReachable) {
  // The self-pair is reachable at every time, including after the last
  // contact and on the empty trace, and is excluded from the pair
  // counts rather than reported as a delivery: out-components and the
  // reachability ratio never include u == v.
  for (const TemporalGraph& g :
       {chain(), TemporalGraph(3, {}), TemporalGraph(3, {{0, 1, 2.0, 5.0}})}) {
    const auto m = last_departure_matrix(g);
    for (std::size_t u = 0; u < g.num_nodes(); ++u) EXPECT_EQ(m[u][u], kInf);
    // Long after the last contact nobody reaches anyone ELSE, yet the
    // self-pair stays trivially reachable -- and stays excluded.
    for (const std::size_t s : out_component_sizes(g, 1e9)) EXPECT_EQ(s, 0u);
    for (const double x : reachability_ratio(g, {1e9})) EXPECT_EQ(x, 0.0);
  }
}

TEST(DailyWindows, InvalidArgumentsThrow) {
  EXPECT_THROW(daily_time_windows(5.0, 1.0, 9.0, 18.0),
               std::invalid_argument);
  EXPECT_THROW(daily_time_windows(0.0, 1.0, 18.0, 9.0),
               std::invalid_argument);
  EXPECT_THROW(daily_time_windows(0.0, 1.0, -1.0, 9.0),
               std::invalid_argument);
  EXPECT_THROW(daily_time_windows(0.0, 1.0, 9.0, 25.0),
               std::invalid_argument);
}

}  // namespace
}  // namespace odtn
