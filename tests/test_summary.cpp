#include "stats/summary.hpp"

#include <gtest/gtest.h>

namespace odtn {
namespace {

TEST(Summary, Empty) {
  SummaryStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_TRUE(s.min() > s.max());  // +inf > -inf sentinels
}

TEST(Summary, SingleValue) {
  SummaryStats s;
  s.add(7.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 7.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 7.0);
  EXPECT_DOUBLE_EQ(s.max(), 7.0);
}

TEST(Summary, KnownMoments) {
  SummaryStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(Summary, StderrShrinksWithN) {
  SummaryStats small, large;
  for (int i = 0; i < 10; ++i) small.add(i % 2);
  for (int i = 0; i < 1000; ++i) large.add(i % 2);
  EXPECT_GT(small.stderr_mean(), large.stderr_mean());
}

TEST(Summary, NumericallyStableForLargeOffsets) {
  SummaryStats s;
  for (int i = 0; i < 1000; ++i) s.add(1e12 + (i % 3));
  EXPECT_NEAR(s.mean(), 1e12 + 1.0, 1e-2);
  EXPECT_NEAR(s.variance(), 2.0 / 3.0, 1e-2);
}

}  // namespace
}  // namespace odtn
