#include "core/contact.hpp"

#include <gtest/gtest.h>

namespace odtn {
namespace {

TEST(Contact, Validity) {
  EXPECT_TRUE(is_valid_contact({0, 1, 0.0, 1.0}));
  EXPECT_TRUE(is_valid_contact({0, 1, 5.0, 5.0}));  // zero duration ok
  EXPECT_FALSE(is_valid_contact({0, 0, 0.0, 1.0}));  // self loop
  EXPECT_FALSE(is_valid_contact({0, 1, 2.0, 1.0}));  // reversed interval
  EXPECT_FALSE(is_valid_contact({kInvalidNode, 1, 0.0, 1.0}));
  EXPECT_FALSE(is_valid_contact(
      {0, 1, std::numeric_limits<double>::infinity(), 1.0}));
}

TEST(Contact, Duration) {
  const Contact c{0, 1, 10.0, 25.0};
  EXPECT_DOUBLE_EQ(c.duration(), 15.0);
}

TEST(Contact, CanonicalOrder) {
  const Contact a{0, 1, 0.0, 5.0};
  const Contact b{0, 1, 1.0, 2.0};
  const Contact c{0, 1, 1.0, 3.0};
  const Contact d{2, 3, 1.0, 3.0};
  EXPECT_TRUE(contact_less(a, b));
  EXPECT_TRUE(contact_less(b, c));
  EXPECT_TRUE(contact_less(c, d));
  EXPECT_FALSE(contact_less(d, c));
  EXPECT_FALSE(contact_less(a, a));
}

TEST(MergeOverlapping, DisjointContactsUntouched) {
  std::vector<Contact> in{{0, 1, 0.0, 1.0}, {0, 1, 2.0, 3.0}};
  const auto out = merge_overlapping_contacts(in);
  EXPECT_EQ(out.size(), 2u);
}

TEST(MergeOverlapping, OverlapsMerge) {
  std::vector<Contact> in{{0, 1, 0.0, 2.0}, {0, 1, 1.0, 3.0}};
  const auto out = merge_overlapping_contacts(in);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_DOUBLE_EQ(out[0].begin, 0.0);
  EXPECT_DOUBLE_EQ(out[0].end, 3.0);
}

TEST(MergeOverlapping, TouchingContactsMerge) {
  std::vector<Contact> in{{0, 1, 0.0, 1.0}, {0, 1, 1.0, 2.0}};
  const auto out = merge_overlapping_contacts(in);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_DOUBLE_EQ(out[0].end, 2.0);
}

TEST(MergeOverlapping, ReversedEndpointOrderIsSamePair) {
  std::vector<Contact> in{{0, 1, 0.0, 2.0}, {1, 0, 1.0, 3.0}};
  const auto out = merge_overlapping_contacts(in);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_DOUBLE_EQ(out[0].end, 3.0);
}

TEST(MergeOverlapping, DifferentPairsNeverMerge) {
  std::vector<Contact> in{{0, 1, 0.0, 2.0}, {0, 2, 1.0, 3.0}};
  EXPECT_EQ(merge_overlapping_contacts(in).size(), 2u);
}

TEST(MergeOverlapping, ContainedIntervalAbsorbed) {
  std::vector<Contact> in{{0, 1, 0.0, 10.0}, {0, 1, 2.0, 3.0}};
  const auto out = merge_overlapping_contacts(in);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_DOUBLE_EQ(out[0].begin, 0.0);
  EXPECT_DOUBLE_EQ(out[0].end, 10.0);
}

TEST(MergeOverlapping, OutputInCanonicalOrder) {
  std::vector<Contact> in{{2, 3, 5.0, 6.0}, {0, 1, 0.0, 1.0}, {1, 2, 3.0, 4.0}};
  const auto out = merge_overlapping_contacts(in);
  ASSERT_EQ(out.size(), 3u);
  for (std::size_t i = 1; i < out.size(); ++i)
    EXPECT_TRUE(contact_less(out[i - 1], out[i]));
}

}  // namespace
}  // namespace odtn
