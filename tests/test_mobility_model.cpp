#include "trace/mobility_model.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/time_format.hpp"

namespace odtn {
namespace {

TEST(ActivityProfile, FlatIsAlwaysOne) {
  const auto p = ActivityProfile::flat();
  for (double t : {0.0, 3600.0, 100000.0, 900000.0})
    EXPECT_DOUBLE_EQ(p.value_at(t), 1.0);
  EXPECT_DOUBLE_EQ(p.max_value(), 1.0);
}

TEST(ActivityProfile, DailyPeriodicity) {
  const auto p = ActivityProfile::conference();
  const double noon = 12 * kHour;
  EXPECT_DOUBLE_EQ(p.value_at(noon), p.value_at(noon + kDay));
  EXPECT_DOUBLE_EQ(p.value_at(noon), p.value_at(noon + 3 * kDay));
}

TEST(ActivityProfile, ConferenceDayVsNight) {
  const auto p = ActivityProfile::conference();
  EXPECT_GT(p.value_at(12 * kHour), 10.0 * p.value_at(3 * kHour));
}

TEST(ActivityProfile, CampusWeekendReduction) {
  const auto p = ActivityProfile::campus();
  const double wednesday_noon = 2 * kDay + 12 * kHour;
  const double saturday_noon = 5 * kDay + 12 * kHour;
  EXPECT_GT(p.value_at(wednesday_noon), 2.0 * p.value_at(saturday_noon));
}

TEST(ActivityProfile, MaxValueBoundsProfile) {
  for (const auto& p : {ActivityProfile::conference(),
                        ActivityProfile::campus(), ActivityProfile::city()}) {
    for (double t = 0; t < 7 * kDay; t += kHour / 2)
      ASSERT_LE(p.value_at(t), p.max_value() + 1e-12);
  }
}

TEST(SampleEventTimes, SortedWithinRangeAndCount) {
  Rng rng(3);
  const auto times =
      sample_event_times(rng, ActivityProfile::conference(), 3 * kDay, 500);
  ASSERT_EQ(times.size(), 500u);
  for (std::size_t i = 0; i < times.size(); ++i) {
    ASSERT_GE(times[i], 0.0);
    ASSERT_LE(times[i], 3 * kDay);
    if (i > 0) {
      ASSERT_GE(times[i], times[i - 1]);
    }
  }
}

TEST(SampleEventTimes, ConcentratesInActiveHours) {
  Rng rng(4);
  const auto times =
      sample_event_times(rng, ActivityProfile::conference(), 5 * kDay, 3000);
  std::size_t day = 0, night = 0;
  for (double t : times) {
    const double hour = std::fmod(t, kDay) / kHour;
    if (hour >= 9 && hour < 18) {
      ++day;
    } else if (hour < 6) {
      ++night;
    }
  }
  EXPECT_GT(day, 10 * night);
}

TEST(DurationModel, ShortFractionRespected) {
  Rng rng(5);
  DurationModel m{0.8, 1.2, 3600.0};
  int shorts = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i)
    if (m.sample(rng, 120.0) == 120.0) ++shorts;
  // Bounded-Pareto can also land exactly at the minimum, so >= 0.8.
  EXPECT_NEAR(shorts / static_cast<double>(n), 0.8, 0.02);
}

TEST(DurationModel, LongTailBounded) {
  Rng rng(6);
  DurationModel m{0.0, 1.1, 7200.0};
  for (int i = 0; i < 5000; ++i) {
    const double d = m.sample(rng, 120.0);
    ASSERT_GE(d, 120.0);
    ASSERT_LE(d, 7200.0);
  }
}

TEST(DurationModel, HeavyTailProducesHourLongContacts) {
  Rng rng(7);
  DurationModel m{0.75, 1.1, 6 * kHour};
  bool saw_long = false;
  for (int i = 0; i < 20000; ++i)
    if (m.sample(rng, 120.0) > kHour) saw_long = true;
  EXPECT_TRUE(saw_long);
}

TEST(QuantizeContact, SnapsToGranularity) {
  // A raw 120-second contact is seen on one scan: one-slot contact.
  const Contact c{0, 1, 130.0, 250.0};
  const Contact q = quantize_contact(c, 120.0);
  EXPECT_DOUBLE_EQ(q.begin, 120.0);
  EXPECT_DOUBLE_EQ(q.end, 240.0);
  // A raw 190-second contact covers two scans.
  const Contact q2 = quantize_contact({0, 1, 130.0, 320.0}, 120.0);
  EXPECT_DOUBLE_EQ(q2.end - q2.begin, 240.0);
}

TEST(QuantizeContact, MinimumOneScanInterval) {
  const Contact c{0, 1, 10.0, 11.0};
  const Contact q = quantize_contact(c, 120.0);
  EXPECT_DOUBLE_EQ(q.begin, 0.0);
  EXPECT_DOUBLE_EQ(q.end, 120.0);
}

TEST(QuantizeContact, ExactMultiplesStayPut) {
  const Contact c{0, 1, 240.0, 480.0};
  const Contact q = quantize_contact(c, 120.0);
  EXPECT_DOUBLE_EQ(q.begin, 240.0);
  EXPECT_DOUBLE_EQ(q.end, 480.0);
}

}  // namespace
}  // namespace odtn
