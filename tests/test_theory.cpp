// Validation of the closed-form analysis (§3.2-3.3, Figures 1-3).
#include "random/theory.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace odtn {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

TEST(EntropyH, KnownValues) {
  EXPECT_DOUBLE_EQ(entropy_h(0.0), 0.0);
  EXPECT_DOUBLE_EQ(entropy_h(1.0), 0.0);
  EXPECT_NEAR(entropy_h(0.5), std::log(2.0), 1e-12);
  EXPECT_THROW(entropy_h(-0.1), std::invalid_argument);
  EXPECT_THROW(entropy_h(1.1), std::invalid_argument);
}

TEST(EntropyH, SymmetricAndConcave) {
  for (double x : {0.1, 0.25, 0.4}) {
    EXPECT_NEAR(entropy_h(x), entropy_h(1.0 - x), 1e-12);
    EXPECT_GT(entropy_h(x), 0.0);
    EXPECT_LT(entropy_h(x), std::log(2.0) + 1e-12);
  }
}

TEST(EntropyG, KnownValues) {
  EXPECT_DOUBLE_EQ(entropy_g(0.0), 0.0);
  EXPECT_NEAR(entropy_g(1.0), 2.0 * std::log(2.0), 1e-12);
  EXPECT_THROW(entropy_g(-0.1), std::invalid_argument);
}

TEST(EntropyG, IncreasingOnPositives) {
  double prev = entropy_g(0.0);
  for (double x = 0.25; x < 5.0; x += 0.25) {
    const double cur = entropy_g(x);
    EXPECT_GT(cur, prev);
    prev = cur;
  }
}

TEST(RateShort, MaximumAtGammaStar) {
  for (double lambda : {0.5, 1.0, 1.5}) {
    const double gs = gamma_star_short(lambda);
    const double peak = rate_short(gs, lambda);
    EXPECT_NEAR(peak, max_rate_short(lambda), 1e-12) << "lambda=" << lambda;
    // Values around the peak are lower.
    EXPECT_LT(rate_short(gs - 0.05, lambda), peak);
    EXPECT_LT(rate_short(gs + 0.05, lambda), peak);
  }
}

TEST(RateShort, MaxIsLogOnePlusLambda) {
  EXPECT_NEAR(max_rate_short(0.5), std::log(1.5), 1e-12);
  EXPECT_NEAR(max_rate_short(1.0), std::log(2.0), 1e-12);
  EXPECT_NEAR(gamma_star_short(0.5), 1.0 / 3.0, 1e-12);
}

TEST(RateLong, MaximumAtGammaStarWhenSparse) {
  for (double lambda : {0.3, 0.5, 0.8}) {
    const double gs = gamma_star_long(lambda);
    const double peak = rate_long(gs, lambda);
    EXPECT_NEAR(peak, max_rate_long(lambda), 1e-10) << "lambda=" << lambda;
    EXPECT_LT(rate_long(gs * 0.9, lambda), peak);
    EXPECT_LT(rate_long(gs * 1.1, lambda), peak);
  }
}

TEST(RateLong, UnboundedWhenDense) {
  // lambda > 1: the curve increases without bound (Figure 2).
  EXPECT_EQ(max_rate_long(1.5), kInf);
  EXPECT_GT(rate_long(10.0, 1.5), rate_long(5.0, 1.5));
  EXPECT_THROW(gamma_star_long(1.0), std::invalid_argument);
}

TEST(DelayConstants, PaperExamples) {
  // Short contacts, lambda = 0.5: delay ~ 2.47 ln N (§3.2.2).
  EXPECT_NEAR(delay_constant_short(0.5), 2.466, 0.001);
  // Long contacts, lambda = 0.5: delay ~ 1.44 ln N, gamma* = 1 so the
  // hop count equals the delay (§3.2.3).
  EXPECT_NEAR(delay_constant_long(0.5), 1.0 / std::log(2.0), 1e-9);
  EXPECT_NEAR(gamma_star_long(0.5), 1.0, 1e-12);
  EXPECT_NEAR(hop_constant_long(0.5), delay_constant_long(0.5), 1e-12);
  // Dense long-contact regime: delay constant collapses to 0.
  EXPECT_DOUBLE_EQ(delay_constant_long(2.0), 0.0);
}

TEST(HopConstants, SmallLambdaLimitIsOne) {
  // Figure 3: as lambda -> 0 both curves tend to 1 (k ~ ln N).
  for (double lambda : {1e-3, 1e-4}) {
    EXPECT_NEAR(hop_constant_short(lambda), 1.0, 0.01);
    EXPECT_NEAR(hop_constant_long(lambda), 1.0, 0.01);
  }
}

TEST(HopConstants, LongCaseSingularAtOne) {
  EXPECT_EQ(hop_constant_long(1.0), kInf);
  // Just above 1 the constant is large; far above it decays as 1/ln.
  EXPECT_GT(hop_constant_long(1.05), hop_constant_long(2.0));
  EXPECT_NEAR(hop_constant_long(std::exp(1.0)), 1.0, 1e-12);
}

TEST(HopConstants, ShortCaseIsFiniteEverywhere) {
  for (double lambda : {0.1, 0.5, 1.0, 2.0, 5.0})
    EXPECT_TRUE(std::isfinite(hop_constant_short(lambda)));
}

TEST(ExpectedPaths, SingleHopIsBinomialTail) {
  // k = 1: E = P[Binomial(t, p) >= 1] = 1 - (1-p)^t.
  const std::size_t n = 100;
  const double lambda = 0.5, p = lambda / n;
  const long t = 10;
  const double expected = 1.0 - std::pow(1.0 - p, static_cast<double>(t));
  EXPECT_NEAR(std::exp(log_expected_paths_short(n, lambda, t, 1)), expected,
              1e-12);
}

TEST(ExpectedPaths, LongAllowsSameSlotChains) {
  // With t = 1 slot, short contacts allow only 1 hop, but long contacts
  // allow k-hop chains within the slot.
  const std::size_t n = 50;
  EXPECT_EQ(log_expected_paths_short(n, 1.0, 1, 2),
            -std::numeric_limits<double>::infinity());
  EXPECT_GT(log_expected_paths_long(n, 1.0, 1, 2),
            -std::numeric_limits<double>::infinity());
}

TEST(ExpectedPaths, MoreTimeNeverHurts) {
  const std::size_t n = 200;
  for (long k : {1L, 3L, 5L}) {
    double prev = -kInf;
    for (long t = k; t <= 40; t += 5) {
      const double cur = log_expected_paths_short(n, 1.0, t, k);
      EXPECT_GE(cur, prev - 1e-12);
      prev = cur;
    }
  }
}

TEST(ExpectedPaths, InfeasibleHopCounts) {
  // k > t is impossible with short contacts; k > N-1 lacks relays.
  EXPECT_EQ(log_expected_paths_short(100, 1.0, 3, 5), -kInf);
  EXPECT_EQ(log_expected_paths_short(4, 1.0, 50, 10), -kInf);
}

TEST(ExpectedPaths, ArgumentValidation) {
  EXPECT_THROW(log_expected_paths_short(1, 1.0, 5, 1), std::invalid_argument);
  EXPECT_THROW(log_expected_paths_short(10, 1.0, 0, 1), std::invalid_argument);
  EXPECT_THROW(log_expected_paths_long(10, 1.0, 5, 0), std::invalid_argument);
}

// Lemma 1: ln E[Pi_N] / ln N approaches the Theta exponent as N grows.
TEST(Lemma1, ExponentConvergence) {
  const double lambda = 0.5;
  const double tau = 4.0;  // supercritical: tau > 1/ln(1.5) ~ 2.47
  const double gamma = gamma_star_short(lambda);
  double prev_error = kInf;
  for (std::size_t n : {100u, 1000u, 10000u, 100000u}) {
    const double log_n = std::log(static_cast<double>(n));
    const auto t = static_cast<long>(std::llround(tau * log_n));
    const auto k = std::max<long>(
        1, std::llround(gamma * static_cast<double>(t)));
    const double measured =
        log_expected_paths_short(n, lambda, t, k) / log_n;
    const double predicted =
        lemma1_exponent_short(static_cast<double>(t) / log_n,
                              static_cast<double>(k) / static_cast<double>(t),
                              lambda);
    const double error = std::abs(measured - predicted);
    EXPECT_LT(error, prev_error + 0.05)
        << "n=" << n;  // converging (allow slack for integer rounding)
    prev_error = error;
  }
  // At the largest size the match is within logarithmic corrections.
  EXPECT_LT(prev_error, 0.2);
}

// The phase transition itself: supercritical parameters give exploding
// expected counts, subcritical give vanishing ones.
TEST(Lemma1, SuperAndSubCriticalSeparation) {
  const double lambda = 0.5;
  const double gamma = gamma_star_short(lambda);
  const double tau_critical = delay_constant_short(lambda);  // ~2.47
  const std::size_t small_n = 1000, large_n = 100000;
  auto log_e = [&](std::size_t n, double tau) {
    const double log_n = std::log(static_cast<double>(n));
    const auto t = static_cast<long>(std::llround(tau * log_n));
    const auto k = std::max<long>(1, std::llround(gamma * t));
    return log_expected_paths_short(n, lambda, t, k);
  };
  // Supercritical (tau = 2 * critical): E grows with N.
  EXPECT_GT(log_e(large_n, 2.0 * tau_critical),
            log_e(small_n, 2.0 * tau_critical));
  EXPECT_GT(log_e(large_n, 2.0 * tau_critical), 1.0);  // E >> 1
  // Subcritical (tau = 0.5 * critical): E shrinks with N.
  EXPECT_LT(log_e(large_n, 0.5 * tau_critical),
            log_e(small_n, 0.5 * tau_critical));
  EXPECT_LT(log_e(large_n, 0.5 * tau_critical), -1.0);  // E << 1
}

}  // namespace
}  // namespace odtn
