#include "stats/log_grid.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <utility>

namespace odtn {
namespace {

TEST(LogGrid, EndpointsExact) {
  const auto g = make_log_grid(120.0, 604800.0, 64);
  ASSERT_EQ(g.size(), 64u);
  EXPECT_DOUBLE_EQ(g.front(), 120.0);
  EXPECT_DOUBLE_EQ(g.back(), 604800.0);
}

TEST(LogGrid, StrictlyIncreasing) {
  const auto g = make_log_grid(0.5, 1000.0, 100);
  for (std::size_t i = 1; i < g.size(); ++i) ASSERT_GT(g[i], g[i - 1]);
}

TEST(LogGrid, LogSpacingIsEven) {
  const auto g = make_log_grid(1.0, 1024.0, 11);
  for (std::size_t i = 1; i < g.size(); ++i)
    EXPECT_NEAR(g[i] / g[i - 1], 2.0, 1e-9);
}

TEST(LogGrid, TwoPoints) {
  const auto g = make_log_grid(1.0, 10.0, 2);
  ASSERT_EQ(g.size(), 2u);
  EXPECT_DOUBLE_EQ(g[0], 1.0);
  EXPECT_DOUBLE_EQ(g[1], 10.0);
}

TEST(LinearGrid, EvenSpacing) {
  const auto g = make_linear_grid(0.0, 10.0, 11);
  ASSERT_EQ(g.size(), 11u);
  for (std::size_t i = 0; i < g.size(); ++i)
    EXPECT_NEAR(g[i], static_cast<double>(i), 1e-12);
}

TEST(LinearGrid, NegativeRange) {
  const auto g = make_linear_grid(-5.0, 5.0, 3);
  EXPECT_DOUBLE_EQ(g[0], -5.0);
  EXPECT_DOUBLE_EQ(g[1], 0.0);
  EXPECT_DOUBLE_EQ(g[2], 5.0);
}

TEST(LinearGrid, EndpointsExact) {
  // Regression: lo + 0 * step can differ from lo in the last ulp when
  // the step itself rounds; both endpoints are now pinned exactly, the
  // same guarantee make_log_grid gives.
  const double lo = 0.1;
  const double hi = 0.1 + 0.7 * 99;  // not exactly representable steps
  const auto g = make_linear_grid(lo, hi, 100);
  ASSERT_EQ(g.size(), 100u);
  EXPECT_EQ(g.front(), lo);
  EXPECT_EQ(g.back(), hi);
}

TEST(LinearGrid, AwkwardEndpointsStayExactAndMonotone) {
  for (const auto& [lo, hi] : {std::pair{1e-9, 3.0000000007},
                              std::pair{-7.3, 11.11},
                              std::pair{1234.5678, 98765.4321}}) {
    for (std::size_t n : {2u, 7u, 33u}) {
      const auto g = make_linear_grid(lo, hi, n);
      ASSERT_EQ(g.size(), n);
      EXPECT_EQ(g.front(), lo) << lo << " " << hi << " " << n;
      EXPECT_EQ(g.back(), hi) << lo << " " << hi << " " << n;
      for (std::size_t i = 1; i < g.size(); ++i) ASSERT_GT(g[i], g[i - 1]);
    }
  }
}

TEST(LogGrid, AwkwardEndpointsStayExact) {
  for (const auto& [lo, hi] :
       {std::pair{0.123, 456.789}, std::pair{3.7, 11.3}}) {
    const auto g = make_log_grid(lo, hi, 17);
    EXPECT_EQ(g.front(), lo);
    EXPECT_EQ(g.back(), hi);
  }
}

}  // namespace
}  // namespace odtn
