// PairArena alignment and recycling contract (util/arena.hpp): every
// span start must land on a 32-byte boundary in every lane -- the SIMD
// frontier kernels consume spans in whole 4-double blocks -- and the
// guarantee must survive growth, truncate() rollbacks, reset() recycling
// and moves.
#include <gtest/gtest.h>

#include <cstdint>
#include <utility>
#include <vector>

#include "util/arena.hpp"
#include "util/rng.hpp"

namespace odtn {
namespace {

bool aligned32(const double* p) {
  return reinterpret_cast<std::uintptr_t>(p) % PairArena::kLaneAlignment == 0;
}

void expect_span_aligned(const PairArena& arena, std::size_t offset) {
  EXPECT_EQ(offset % PairArena::kSpanAlignPairs, 0u);
  EXPECT_TRUE(aligned32(arena.ld() + offset));
  EXPECT_TRUE(aligned32(arena.ea() + offset));
}

TEST(PairArena, SpanStartsStay32ByteAlignedAcrossRecycleCycles) {
  PairArena arena(/*with_aux=*/true);
  Rng rng = Rng::keyed(0xA11A, 0);
  for (int cycle = 0; cycle < 6; ++cycle) {
    std::vector<std::size_t> offsets;
    // Odd sizes force padding between spans; big ones force growth.
    for (int i = 0; i < 40; ++i) {
      const std::size_t n = 1 + rng.below(97);
      const std::size_t off = arena.allocate(n);
      expect_span_aligned(arena, off);
      EXPECT_TRUE(aligned32(arena.aux() + off));
      offsets.push_back(off);
      if (rng.bernoulli(0.2)) {
        // Speculative allocation rolled back: the bump pointer returns
        // to a previously returned (hence aligned) offset.
        arena.truncate(off);
        offsets.pop_back();
      }
    }
    // Lane bases themselves are aligned.
    EXPECT_TRUE(aligned32(arena.ld()));
    EXPECT_TRUE(aligned32(arena.ea()));
    EXPECT_TRUE(aligned32(arena.aux()));
    arena.reset();
    EXPECT_EQ(arena.size(), 0u);
  }
}

TEST(PairArena, GrowthPreservesContentsAndAlignment) {
  PairArena arena;
  const std::size_t first = arena.allocate(10);
  for (std::size_t i = 0; i < 10; ++i) {
    arena.ld()[first + i] = 100.0 + static_cast<double>(i);
    arena.ea()[first + i] = 200.0 + static_cast<double>(i);
  }
  // Blow far past the current capacity so the lanes must move.
  const std::size_t big = arena.allocate(8192);
  expect_span_aligned(arena, big);
  expect_span_aligned(arena, first);
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(arena.ld()[first + i], 100.0 + static_cast<double>(i));
    EXPECT_EQ(arena.ea()[first + i], 200.0 + static_cast<double>(i));
  }
}

TEST(PairArena, RecycledCapacityDoesNotRegrow) {
  PairArena arena;
  for (int i = 0; i < 20; ++i) arena.allocate(50);
  const std::size_t cap = arena.capacity();
  const std::size_t bytes = arena.capacity_bytes();
  for (int cycle = 0; cycle < 4; ++cycle) {
    arena.reset();
    for (int i = 0; i < 20; ++i) {
      const std::size_t off = arena.allocate(50);
      expect_span_aligned(arena, off);
    }
  }
  EXPECT_EQ(arena.capacity(), cap);
  EXPECT_EQ(arena.capacity_bytes(), bytes);
}

TEST(PairArena, PeakTracksPaddedHighWater) {
  PairArena arena;
  const std::size_t a = arena.allocate(5);
  EXPECT_EQ(a, 0u);
  const std::size_t b = arena.allocate(3);
  // 5 rounds up to 8: one padded gap between the spans.
  EXPECT_EQ(b, 8u);
  EXPECT_EQ(arena.size(), 11u);
  EXPECT_EQ(arena.peak_pairs(), 11u);
  arena.reset();
  EXPECT_EQ(arena.peak_pairs(), 11u);
}

TEST(PairArena, MoveTransfersLanesAndEmptiesSource) {
  PairArena src;
  const std::size_t off = src.allocate(16);
  src.ld()[off] = 42.0;
  const double* lanes = src.ld();
  PairArena dst = std::move(src);
  EXPECT_EQ(dst.ld(), lanes);
  EXPECT_EQ(dst.ld()[off], 42.0);
  EXPECT_EQ(dst.size(), 16u);
  EXPECT_EQ(src.capacity(), 0u);  // NOLINT(bugprone-use-after-move)
  // And the moved-to arena still honors the alignment contract.
  const std::size_t next = dst.allocate(7);
  expect_span_aligned(dst, next);
}

}  // namespace
}  // namespace odtn
