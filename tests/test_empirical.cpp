#include "stats/empirical.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <thread>
#include <vector>

namespace odtn {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

TEST(Empirical, EmptyDistribution) {
  EmpiricalDistribution d;
  EXPECT_EQ(d.count(), 0u);
  EXPECT_DOUBLE_EQ(d.cdf(0.0), 0.0);
  EXPECT_DOUBLE_EQ(d.ccdf(0.0), 1.0);
}

TEST(Empirical, BasicCdf) {
  EmpiricalDistribution d;
  for (double x : {1.0, 2.0, 3.0, 4.0}) d.add(x);
  EXPECT_DOUBLE_EQ(d.cdf(0.5), 0.0);
  EXPECT_DOUBLE_EQ(d.cdf(1.0), 0.25);
  EXPECT_DOUBLE_EQ(d.cdf(2.5), 0.5);
  EXPECT_DOUBLE_EQ(d.cdf(4.0), 1.0);
  EXPECT_DOUBLE_EQ(d.cdf(100.0), 1.0);
}

TEST(Empirical, InfiniteMassSaturatesBelowOne) {
  EmpiricalDistribution d;
  d.add(1.0);
  d.add(kInf);
  d.add(kInf);
  d.add(kInf);
  EXPECT_EQ(d.count(), 4u);
  EXPECT_EQ(d.infinite_count(), 3u);
  EXPECT_DOUBLE_EQ(d.cdf(1e9), 0.25);
}

TEST(Empirical, QuantileOrderStatistics) {
  EmpiricalDistribution d;
  for (double x : {10.0, 20.0, 30.0, 40.0, 50.0}) d.add(x);
  EXPECT_DOUBLE_EQ(d.quantile(0.0), 10.0);
  EXPECT_DOUBLE_EQ(d.quantile(0.2), 10.0);
  EXPECT_DOUBLE_EQ(d.quantile(0.5), 30.0);
  EXPECT_DOUBLE_EQ(d.quantile(1.0), 50.0);
}

TEST(Empirical, QuantileInInfiniteMass) {
  EmpiricalDistribution d;
  d.add(1.0);
  d.add(kInf);
  EXPECT_DOUBLE_EQ(d.quantile(0.5), 1.0);
  EXPECT_EQ(d.quantile(1.0), kInf);
}

TEST(Empirical, AddWithCount) {
  EmpiricalDistribution d;
  d.add(5.0, 10);
  EXPECT_EQ(d.count(), 10u);
  EXPECT_DOUBLE_EQ(d.finite_mean(), 5.0);
}

TEST(Empirical, FiniteExtremaAndMean) {
  EmpiricalDistribution d;
  d.add(3.0);
  d.add(-1.0);
  d.add(kInf);
  EXPECT_DOUBLE_EQ(d.finite_min(), -1.0);
  EXPECT_DOUBLE_EQ(d.finite_max(), 3.0);
  EXPECT_DOUBLE_EQ(d.finite_mean(), 1.0);
}

TEST(Empirical, AddAfterQueryStillCorrect) {
  EmpiricalDistribution d;
  d.add(2.0);
  EXPECT_DOUBLE_EQ(d.cdf(2.0), 1.0);
  d.add(1.0);
  EXPECT_DOUBLE_EQ(d.cdf(1.5), 0.5);
}

TEST(Empirical, ConcurrentConstReadersAreSafe) {
  // Regression: ensure_sorted() used to mutate the sample buffer from
  // const accessors with no synchronization, so two threads issuing the
  // first query after add() raced on std::sort. Run many rounds of
  // "populate, then query from several threads at once"; under TSan
  // (tools/verify.sh tier 3) the old code reports the race, and under
  // any build the answers must come out right.
  const int rounds = 50;
  const unsigned readers = 4;
  for (int round = 0; round < rounds; ++round) {
    EmpiricalDistribution d;
    const int samples = 200;
    for (int i = 0; i < samples; ++i)
      d.add(static_cast<double>((i * 29 + round) % samples));
    std::vector<std::thread> threads;
    std::vector<int> bad(readers, 0);
    for (unsigned r = 0; r < readers; ++r) {
      threads.emplace_back([&, r] {
        // Each reader triggers/overlaps the lazy sort.
        if (std::abs(d.cdf(99.0) - 0.5) > 1e-12) bad[r] = 1;
        if (d.quantile(0.0) != 0.0) bad[r] = 1;
        if (d.quantile(1.0) != samples - 1.0) bad[r] = 1;
        if (d.finite_min() != 0.0) bad[r] = 1;
      });
    }
    for (auto& t : threads) t.join();
    for (unsigned r = 0; r < readers; ++r)
      ASSERT_EQ(bad[r], 0) << "reader " << r << " round " << round;
  }
}

TEST(Empirical, CopyAndMovePreserveSamples) {
  // The sort flag and mutex made the class non-copyable by default;
  // the handwritten copy/move ops must keep value semantics intact.
  EmpiricalDistribution d;
  for (double x : {3.0, 1.0, 2.0}) d.add(x);
  EmpiricalDistribution copy(d);       // copied while still unsorted
  EXPECT_DOUBLE_EQ(copy.cdf(2.0), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(d.cdf(2.0), 2.0 / 3.0);
  EmpiricalDistribution moved(std::move(copy));
  EXPECT_DOUBLE_EQ(moved.quantile(1.0), 3.0);
  EmpiricalDistribution assigned;
  assigned = d;
  EXPECT_EQ(assigned.count(), 3u);
  EXPECT_DOUBLE_EQ(assigned.finite_mean(), 2.0);
}

TEST(Empirical, GridEvaluation) {
  EmpiricalDistribution d;
  for (double x : {1.0, 2.0, 3.0}) d.add(x);
  const auto cdf = d.cdf_on_grid({0.5, 1.5, 3.5});
  ASSERT_EQ(cdf.size(), 3u);
  EXPECT_DOUBLE_EQ(cdf[0], 0.0);
  EXPECT_NEAR(cdf[1], 1.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(cdf[2], 1.0);
  const auto ccdf = d.ccdf_on_grid({0.5, 1.5, 3.5});
  for (std::size_t i = 0; i < 3; ++i)
    EXPECT_NEAR(cdf[i] + ccdf[i], 1.0, 1e-12);
}

}  // namespace
}  // namespace odtn
