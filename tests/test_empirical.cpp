#include "stats/empirical.hpp"

#include <gtest/gtest.h>

#include <limits>

namespace odtn {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

TEST(Empirical, EmptyDistribution) {
  EmpiricalDistribution d;
  EXPECT_EQ(d.count(), 0u);
  EXPECT_DOUBLE_EQ(d.cdf(0.0), 0.0);
  EXPECT_DOUBLE_EQ(d.ccdf(0.0), 1.0);
}

TEST(Empirical, BasicCdf) {
  EmpiricalDistribution d;
  for (double x : {1.0, 2.0, 3.0, 4.0}) d.add(x);
  EXPECT_DOUBLE_EQ(d.cdf(0.5), 0.0);
  EXPECT_DOUBLE_EQ(d.cdf(1.0), 0.25);
  EXPECT_DOUBLE_EQ(d.cdf(2.5), 0.5);
  EXPECT_DOUBLE_EQ(d.cdf(4.0), 1.0);
  EXPECT_DOUBLE_EQ(d.cdf(100.0), 1.0);
}

TEST(Empirical, InfiniteMassSaturatesBelowOne) {
  EmpiricalDistribution d;
  d.add(1.0);
  d.add(kInf);
  d.add(kInf);
  d.add(kInf);
  EXPECT_EQ(d.count(), 4u);
  EXPECT_EQ(d.infinite_count(), 3u);
  EXPECT_DOUBLE_EQ(d.cdf(1e9), 0.25);
}

TEST(Empirical, QuantileOrderStatistics) {
  EmpiricalDistribution d;
  for (double x : {10.0, 20.0, 30.0, 40.0, 50.0}) d.add(x);
  EXPECT_DOUBLE_EQ(d.quantile(0.0), 10.0);
  EXPECT_DOUBLE_EQ(d.quantile(0.2), 10.0);
  EXPECT_DOUBLE_EQ(d.quantile(0.5), 30.0);
  EXPECT_DOUBLE_EQ(d.quantile(1.0), 50.0);
}

TEST(Empirical, QuantileInInfiniteMass) {
  EmpiricalDistribution d;
  d.add(1.0);
  d.add(kInf);
  EXPECT_DOUBLE_EQ(d.quantile(0.5), 1.0);
  EXPECT_EQ(d.quantile(1.0), kInf);
}

TEST(Empirical, AddWithCount) {
  EmpiricalDistribution d;
  d.add(5.0, 10);
  EXPECT_EQ(d.count(), 10u);
  EXPECT_DOUBLE_EQ(d.finite_mean(), 5.0);
}

TEST(Empirical, FiniteExtremaAndMean) {
  EmpiricalDistribution d;
  d.add(3.0);
  d.add(-1.0);
  d.add(kInf);
  EXPECT_DOUBLE_EQ(d.finite_min(), -1.0);
  EXPECT_DOUBLE_EQ(d.finite_max(), 3.0);
  EXPECT_DOUBLE_EQ(d.finite_mean(), 1.0);
}

TEST(Empirical, AddAfterQueryStillCorrect) {
  EmpiricalDistribution d;
  d.add(2.0);
  EXPECT_DOUBLE_EQ(d.cdf(2.0), 1.0);
  d.add(1.0);
  EXPECT_DOUBLE_EQ(d.cdf(1.5), 0.5);
}

TEST(Empirical, GridEvaluation) {
  EmpiricalDistribution d;
  for (double x : {1.0, 2.0, 3.0}) d.add(x);
  const auto cdf = d.cdf_on_grid({0.5, 1.5, 3.5});
  ASSERT_EQ(cdf.size(), 3u);
  EXPECT_DOUBLE_EQ(cdf[0], 0.0);
  EXPECT_NEAR(cdf[1], 1.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(cdf[2], 1.0);
  const auto ccdf = d.ccdf_on_grid({0.5, 1.5, 3.5});
  for (std::size_t i = 0; i < 3; ++i)
    EXPECT_NEAR(cdf[i] + ccdf[i], 1.0, 1e-12);
}

}  // namespace
}  // namespace odtn
