#include "util/csv.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace odtn {
namespace {

std::string read_all(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

class CsvWriterTest : public ::testing::Test {
 protected:
  std::string path_ = ::testing::TempDir() + "/odtn_csv_test.csv";
  void TearDown() override { std::remove(path_.c_str()); }
};

TEST(CsvEscape, PlainFieldUntouched) {
  EXPECT_EQ(csv_escape("hello"), "hello");
  EXPECT_EQ(csv_escape("3.14"), "3.14");
}

TEST(CsvEscape, CommaQuoted) { EXPECT_EQ(csv_escape("a,b"), "\"a,b\""); }

TEST(CsvEscape, QuoteDoubled) {
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(CsvEscape, NewlineQuoted) { EXPECT_EQ(csv_escape("a\nb"), "\"a\nb\""); }

TEST_F(CsvWriterTest, WritesRows) {
  {
    CsvWriter w(path_);
    w.write_row({"x", "y"});
    w.write_numeric_row({1.0, 2.5});
    EXPECT_EQ(w.rows_written(), 2u);
  }
  EXPECT_EQ(read_all(path_), "x,y\n1,2.5\n");
}

TEST_F(CsvWriterTest, EscapesInsideRows) {
  {
    CsvWriter w(path_);
    w.write_row({"name", "a,b"});
  }
  EXPECT_EQ(read_all(path_), "name,\"a,b\"\n");
}

TEST_F(CsvWriterTest, NumericRowsRoundTripExactly) {
  // Shortest round-trip formatting: every value parses back to the same
  // bit pattern, and the old %.6g truncation artifacts are gone.
  const std::vector<double> values = {0.1 + 0.2, 1.0 / 3.0, 1e-300,
                                      123456789.123456789, -0.0, 2e22};
  {
    CsvWriter w(path_);
    w.write_numeric_row(values);
  }
  const std::string line = read_all(path_);
  EXPECT_EQ(line, "0.30000000000000004,0.3333333333333333,1e-300,"
                  "123456789.12345679,-0,2e+22\n");
  std::istringstream in(line);
  std::string field;
  for (double expected : values) {
    ASSERT_TRUE(std::getline(in, field, ','));
    EXPECT_EQ(std::stod(field), expected);
  }
}

TEST_F(CsvWriterTest, IntegralValuesStayShort) {
  {
    CsvWriter w(path_);
    w.write_numeric_row({0.0, 42.0, -7.0, 1e6});
  }
  EXPECT_EQ(read_all(path_), "0,42,-7,1e+06\n");
}

TEST(CsvWriter, ThrowsOnUnwritablePath) {
  EXPECT_THROW(CsvWriter("/nonexistent-dir/x.csv"), std::runtime_error);
}

}  // namespace
}  // namespace odtn
