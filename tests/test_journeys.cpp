#include "core/journeys.hpp"

#include <gtest/gtest.h>

#include <limits>

#include "core/optimal_paths.hpp"
#include "sim/flooding.hpp"
#include "trace/generators.hpp"
#include "util/rng.hpp"
#include "util/time_format.hpp"

namespace odtn {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

TEST(Journeys, SourceIsTrivial) {
  TemporalGraph g(2, {{0, 1, 0.0, 1.0}});
  const auto j = compute_journeys(g, 0);
  EXPECT_EQ(j[0].shortest_hops, 0);
  EXPECT_DOUBLE_EQ(j[0].fastest_duration, 0.0);
}

TEST(Journeys, UnreachableDestination) {
  TemporalGraph g(3, {{0, 1, 0.0, 1.0}});
  const auto j = compute_journeys(g, 0);
  EXPECT_FALSE(j[2].reachable());
  EXPECT_EQ(j[2].shortest_hops, -1);
  EXPECT_EQ(j[2].fastest_duration, kInf);
}

TEST(Journeys, ForemostFastestShortestDisagree) {
  // Three different routes 0 -> 3, each optimal for a different notion:
  //  - relay chain early:    dep 0,  arr 10  (foremost from t=0)
  //  - overlapping mid-day:  dep 50, arr 50  (fastest: duration 0)
  //  - late direct contact:  dep 90, arr 90..91 (shortest: 1 hop)
  TemporalGraph g(4, {{0, 1, 0.0, 1.0},
                      {1, 2, 5.0, 6.0},
                      {2, 3, 10.0, 11.0},
                      {0, 2, 45.0, 55.0},
                      {2, 3, 48.0, 52.0},
                      {0, 3, 90.0, 91.0}});
  const auto j = compute_journeys(g, 0);
  EXPECT_EQ(j[3].shortest_hops, 1);  // the late direct contact
  EXPECT_DOUBLE_EQ(j[3].fastest_duration, 0.0);  // the overlapping window
  EXPECT_GE(j[3].fastest_departure, 48.0);
  EXPECT_LE(j[3].fastest_departure, 52.0);
  EXPECT_DOUBLE_EQ(foremost_arrival(g, 0, 3, 0.0), 10.0);  // early chain
}

TEST(Journeys, FastestDurationOfStoreAndForward) {
  TemporalGraph g(3, {{0, 1, 0.0, 2.0}, {1, 2, 5.0, 7.0}});
  const auto j = compute_journeys(g, 0);
  // Depart at 2 (last moment), arrive at 5: duration 3.
  EXPECT_DOUBLE_EQ(j[2].fastest_duration, 3.0);
  EXPECT_DOUBLE_EQ(j[2].fastest_departure, 2.0);
  EXPECT_EQ(j[2].shortest_hops, 2);
}

TEST(Journeys, ShortestHopsMatchesFirstReachableLevel) {
  TemporalGraph g(4, {{0, 1, 0.0, 1.0}, {1, 2, 2.0, 3.0}, {2, 3, 4.0, 5.0}});
  const auto j = compute_journeys(g, 0);
  EXPECT_EQ(j[1].shortest_hops, 1);
  EXPECT_EQ(j[2].shortest_hops, 2);
  EXPECT_EQ(j[3].shortest_hops, 3);
}

TEST(Journeys, ForemostMatchesFloodingOracle) {
  SyntheticTraceSpec spec;
  spec.num_internal = 12;
  spec.duration = kDay;
  spec.pair_contacts_mean = 2.0;
  const auto g = generate_trace(spec, 3).graph;
  Rng rng(4);
  for (int q = 0; q < 20; ++q) {
    const auto src = static_cast<NodeId>(rng.below(g.num_nodes()));
    const double t0 = rng.uniform(g.start_time(), g.end_time());
    const auto fr = flood(g, src, t0);
    for (NodeId dst = 0; dst < g.num_nodes(); ++dst)
      ASSERT_EQ(foremost_arrival(g, src, dst, t0), fr.best_arrival(dst));
  }
}

TEST(Journeys, FastestNeverExceedsForemostDelay) {
  // The fastest journey's duration lower-bounds every journey's
  // duration, in particular the foremost one's.
  SyntheticTraceSpec spec;
  spec.num_internal = 14;
  spec.duration = kDay;
  spec.pair_contacts_mean = 1.5;
  spec.gatherings = {30.0, 0.4, 0.1, 10 * kMinute, 0.8, 0.1};
  const auto g = generate_trace(spec, 9).graph;
  const auto journeys = compute_journeys(g, 0);
  SingleSourceEngine engine(g, 0);
  engine.run_to_fixpoint();
  Rng rng(10);
  for (NodeId dst = 1; dst < g.num_nodes(); ++dst) {
    for (int q = 0; q < 10; ++q) {
      const double t0 = rng.uniform(g.start_time(), g.end_time());
      const double arrival = engine.frontier(dst).deliver_at(t0);
      if (arrival == kInf) continue;
      ASSERT_LE(journeys[dst].fastest_duration, arrival - t0 + 1e-9);
    }
  }
}

TEST(Journeys, ShortestHopsLowerBoundsEveryRouteLength) {
  SyntheticTraceSpec spec;
  spec.num_internal = 10;
  spec.duration = kDay;
  spec.pair_contacts_mean = 2.0;
  const auto g = generate_trace(spec, 21).graph;
  const auto journeys = compute_journeys(g, 0);
  Rng rng(22);
  for (int q = 0; q < 15; ++q) {
    const double t0 = rng.uniform(g.start_time(), g.end_time());
    const auto fr = flood(g, 0, t0);
    for (NodeId dst = 1; dst < g.num_nodes(); ++dst) {
      const int hops = fr.optimal_hops(dst);
      if (hops < 0) continue;
      ASSERT_LE(journeys[dst].shortest_hops, hops);
    }
  }
}

}  // namespace
}  // namespace odtn
