// Tests of the Pareto-frontier delivery function (paper §4.3-4.4,
// condition (4), Figure 5).
#include "core/delivery_function.hpp"

#include <gtest/gtest.h>

#include <limits>

#include "stats/log_grid.hpp"
#include "util/rng.hpp"

namespace odtn {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

void expect_invariants(const DeliveryFunction& f) {
  const auto& ps = f.pairs();
  for (std::size_t i = 1; i < ps.size(); ++i) {
    ASSERT_LT(ps[i - 1].ld, ps[i].ld) << "LD must strictly increase";
    ASSERT_LT(ps[i - 1].ea, ps[i].ea) << "EA must strictly increase";
  }
}

TEST(DeliveryFunction, EmptyIsUnreachable) {
  DeliveryFunction f;
  EXPECT_TRUE(f.empty());
  EXPECT_EQ(f.deliver_at(0.0), kInf);
  EXPECT_EQ(f.delay(0.0), kInf);
  EXPECT_EQ(f.last_departure(), -kInf);
}

TEST(DeliveryFunction, SinglePair) {
  DeliveryFunction f;
  EXPECT_TRUE(f.insert({10.0, 4.0}));
  EXPECT_DOUBLE_EQ(f.deliver_at(0.0), 4.0);
  EXPECT_DOUBLE_EQ(f.deliver_at(7.0), 7.0);
  EXPECT_EQ(f.deliver_at(11.0), kInf);
  EXPECT_DOUBLE_EQ(f.delay(0.0), 4.0);
  EXPECT_DOUBLE_EQ(f.delay(7.0), 0.0);
}

TEST(DeliveryFunction, DominatedInsertRejected) {
  DeliveryFunction f;
  EXPECT_TRUE(f.insert({10.0, 4.0}));
  EXPECT_FALSE(f.insert({10.0, 4.0}));  // duplicate
  EXPECT_FALSE(f.insert({9.0, 5.0}));   // strictly worse
  EXPECT_FALSE(f.insert({10.0, 5.0}));  // worse arrival, same departure
  EXPECT_EQ(f.size(), 1u);
}

TEST(DeliveryFunction, DominatingInsertEvictsWorsePairs) {
  DeliveryFunction f;
  f.insert({5.0, 3.0});
  f.insert({8.0, 6.0});
  EXPECT_TRUE(f.insert({9.0, 2.0}));  // dominates both
  EXPECT_EQ(f.size(), 1u);
  EXPECT_DOUBLE_EQ(f.pairs()[0].ld, 9.0);
  expect_invariants(f);
}

TEST(DeliveryFunction, EqualLdBetterEaReplaces) {
  DeliveryFunction f;
  f.insert({5.0, 3.0});
  EXPECT_TRUE(f.insert({5.0, 1.0}));
  EXPECT_EQ(f.size(), 1u);
  EXPECT_DOUBLE_EQ(f.pairs()[0].ea, 1.0);
  expect_invariants(f);
}

TEST(DeliveryFunction, EqualEaLaterLdReplaces) {
  DeliveryFunction f;
  f.insert({5.0, 3.0});
  EXPECT_TRUE(f.insert({7.0, 3.0}));
  EXPECT_EQ(f.size(), 1u);
  EXPECT_DOUBLE_EQ(f.pairs()[0].ld, 7.0);
  expect_invariants(f);
}

TEST(DeliveryFunction, IncomparablePairsCoexist) {
  DeliveryFunction f;
  EXPECT_TRUE(f.insert({5.0, 1.0}));
  EXPECT_TRUE(f.insert({10.0, 7.0}));
  EXPECT_TRUE(f.insert({20.0, 15.0}));
  EXPECT_EQ(f.size(), 3u);
  expect_invariants(f);
}

// Figure 5: four (LD, EA) pairs; pairs 1-3 contemporaneous (EA <= LD),
// pair 4 is store-and-forward (LD4 < EA4).
TEST(DeliveryFunction, Figure5Shape) {
  DeliveryFunction f;
  f.insert({2.0, 1.0});    // (LD1, EA1)
  f.insert({5.0, 4.0});    // (LD2, EA2)
  f.insert({8.0, 7.0});    // (LD3, EA3)
  f.insert({10.0, 13.0});  // (LD4, EA4): EA4 > LD4
  EXPECT_EQ(f.size(), 4u);
  expect_invariants(f);
  // Within pair 1's window: instantaneous.
  EXPECT_DOUBLE_EQ(f.deliver_at(1.5), 1.5);
  // Between pairs: wait for the next EA.
  EXPECT_DOUBLE_EQ(f.deliver_at(2.5), 4.0);
  EXPECT_DOUBLE_EQ(f.deliver_at(5.5), 7.0);
  // The store-and-forward pair: depart by 10, arrive at 13.
  EXPECT_DOUBLE_EQ(f.deliver_at(9.0), 13.0);
  EXPECT_DOUBLE_EQ(f.deliver_at(10.0), 13.0);
  // After the last departure: infinity.
  EXPECT_EQ(f.deliver_at(10.1), kInf);
}

TEST(DeliveryFunction, IsDominatedQuery) {
  DeliveryFunction f;
  f.insert({5.0, 1.0});
  f.insert({10.0, 7.0});
  EXPECT_TRUE(f.is_dominated({4.0, 2.0}));
  EXPECT_TRUE(f.is_dominated({10.0, 7.0}));
  EXPECT_FALSE(f.is_dominated({11.0, 8.0}));
  EXPECT_FALSE(f.is_dominated({7.0, 3.0}));
}

class DeliveryFunctionRandom : public ::testing::TestWithParam<std::uint64_t> {
};

// Property: a frontier built from random pairs computes exactly the same
// del(t) as the brute-force Eq. (3) evaluation over ALL inserted pairs.
TEST_P(DeliveryFunctionRandom, MatchesBruteForceEquation3) {
  Rng rng(GetParam());
  DeliveryFunction f;
  std::vector<PathPair> all;
  for (int i = 0; i < 300; ++i) {
    const double ld = rng.uniform(0, 100);
    const double ea = rng.uniform(-20, 120);
    all.push_back({ld, ea});
    f.insert({ld, ea});
    expect_invariants(f);
  }
  for (int q = 0; q < 1000; ++q) {
    const double t = rng.uniform(-10, 110);
    ASSERT_EQ(f.deliver_at(t), deliver_at_bruteforce(all, t)) << "t=" << t;
  }
}

// Property: the kept list satisfies exactly the paper's condition (4) --
// with pairs sorted by LD, pair k is kept iff EA_k = min{EA_l : l >= k} --
// and every discarded pair is dominated by some kept pair.
TEST_P(DeliveryFunctionRandom, ConditionFourAndCompleteness) {
  Rng rng(GetParam() ^ 0xABCD);
  DeliveryFunction f;
  std::vector<PathPair> all;
  for (int i = 0; i < 120; ++i) {
    const PathPair p{rng.uniform(0, 50), rng.uniform(-10, 60)};
    all.push_back(p);
    f.insert(p);
  }
  // Condition (4): EA strictly increasing along the LD-sorted frontier.
  const auto& ps = f.pairs();
  for (std::size_t k = 0; k + 1 < ps.size(); ++k) {
    ASSERT_LT(ps[k].ld, ps[k + 1].ld);
    ASSERT_LT(ps[k].ea, ps[k + 1].ea);
  }
  // Completeness: every inserted pair is dominated by some kept pair
  // (so no optimal path was lost).
  for (const PathPair& p : all) {
    bool covered = false;
    for (const PathPair& kept : ps)
      if (dominates(kept, p)) {
        covered = true;
        break;
      }
    EXPECT_TRUE(covered) << "pair (" << p.ld << ", " << p.ea << ") lost";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeliveryFunctionRandom,
                         ::testing::Values(1u, 77u, 2024u, 0xFEEDu));

TEST(DeliveryFunction, AccumulateMatchesClosedForm) {
  DeliveryFunction f;
  f.insert({10.0, 5.0});
  f.insert({30.0, 25.0});
  const std::vector<double> grid{1.0, 5.0, 20.0};
  MeasureCdfAccumulator acc(grid);
  f.accumulate_delay_measure(acc, 0.0, 40.0);
  acc.add_observation_measure(40.0);
  const auto cdf = acc.cdf();
  // Segment 1: t in (0, 10], arrival 5 -> delay max(0, 5-t).
  //   delay <= 1: t in [4, 10] -> 6.   delay <= 5: all 10.  <= 20: 10.
  // Segment 2: t in (10, 30], arrival 25.
  //   delay <= 1: t in [24, 30] -> 6.  delay <= 5: t in [20,30] -> 10.
  //   delay <= 20: t in (10, 30] -> 20.
  // Start times in (30, 40]: no path, contribute 0.
  EXPECT_NEAR(cdf[0], (6.0 + 6.0) / 40.0, 1e-12);
  EXPECT_NEAR(cdf[1], (10.0 + 10.0) / 40.0, 1e-12);
  EXPECT_NEAR(cdf[2], (10.0 + 20.0) / 40.0, 1e-12);
}

TEST(DeliveryFunction, AccumulateRespectsWindowClipping) {
  DeliveryFunction f;
  f.insert({10.0, 5.0});
  const std::vector<double> grid{100.0};
  MeasureCdfAccumulator acc(grid);
  f.accumulate_delay_measure(acc, 2.0, 6.0);  // only t in (2, 6]
  acc.add_observation_measure(4.0);
  EXPECT_NEAR(acc.cdf()[0], 1.0, 1e-12);  // all 4 units delivered
}

}  // namespace
}  // namespace odtn
