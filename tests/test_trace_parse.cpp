// Property tests for the streaming trace parser: write_trace ->
// read_trace is bit-identical for randomized traces (negative times,
// zero durations, CRLF line endings, directed flags), and the streaming
// parser agrees with the seed line-stream parser on every input both
// accept. Part of the `quick` tier-1 smoke label.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <sstream>
#include <string>
#include <vector>

#include "core/temporal_graph.hpp"
#include "trace/trace_io.hpp"
#include "util/rng.hpp"

namespace odtn {
namespace {

/// Random trace exercising the writer's full value range: negative
/// times, zero durations, sub-second fractions that need all 17 digits,
/// and both directedness flags.
TemporalGraph random_trace(Rng& rng) {
  const std::size_t nodes = 2 + rng.below(20);
  const std::size_t count = rng.below(120);
  std::vector<Contact> contacts;
  contacts.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const auto u = static_cast<NodeId>(rng.below(nodes));
    auto v = static_cast<NodeId>(rng.below(nodes - 1));
    if (v >= u) ++v;
    double begin = rng.uniform(-1e4, 1e4);
    double length = 0.0;
    switch (rng.below(4)) {
      case 0: length = 0.0; break;                       // instantaneous
      case 1: length = rng.below(100); break;            // integral
      case 2: length = rng.uniform(0.0, 1e-6); break;    // tiny fraction
      default: length = rng.uniform(0.0, 1e5); break;    // long
    }
    if (rng.bernoulli(0.3)) begin = std::floor(begin);
    contacts.push_back({u, v, begin, begin + length});
  }
  return TemporalGraph(nodes, std::move(contacts), rng.bernoulli(0.3));
}

void expect_identical(const TemporalGraph& a, const TemporalGraph& b,
                      const std::string& context) {
  EXPECT_EQ(a.num_nodes(), b.num_nodes()) << context;
  EXPECT_EQ(a.directed(), b.directed()) << context;
  EXPECT_TRUE(std::ranges::equal(a.contacts(), b.contacts())) << context;
}

TEST(TraceParseProperty, RoundTripIsBitIdentical) {
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    Rng rng(seed);
    const TemporalGraph original = random_trace(rng);
    std::ostringstream out;
    write_trace(out, original);
    std::istringstream in(out.str());
    expect_identical(read_trace(in), original,
                     "seed " + std::to_string(seed));
  }
}

TEST(TraceParseProperty, CrlfRoundTripIsBitIdentical) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    Rng rng(seed);
    const TemporalGraph original = random_trace(rng);
    std::ostringstream out;
    write_trace(out, original);
    std::string text = out.str();
    // Rewrite the file the way a Windows tool would.
    std::string crlf;
    crlf.reserve(text.size() + text.size() / 16);
    for (char c : text) {
      if (c == '\n') crlf += '\r';
      crlf += c;
    }
    std::istringstream in(crlf);
    expect_identical(read_trace(in), original,
                     "seed " + std::to_string(seed));
  }
}

TEST(TraceParseProperty, StreamingAgreesWithReferenceParser) {
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    Rng rng(seed);
    const TemporalGraph original = random_trace(rng);
    std::ostringstream out;
    write_trace(out, original);
    std::istringstream fast_in(out.str());
    std::istringstream ref_in(out.str());
    expect_identical(read_trace(fast_in), read_trace_reference(ref_in),
                     "seed " + std::to_string(seed));
  }
}

TEST(TraceParseProperty, LenientEqualsStrictOnCleanTraces) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    Rng rng(seed);
    const TemporalGraph original = random_trace(rng);
    std::ostringstream out;
    write_trace(out, original);
    std::istringstream in(out.str());
    ParseReport report;
    expect_identical(read_trace(in, {ParseMode::kLenient}, &report), original,
                     "seed " + std::to_string(seed));
    EXPECT_EQ(report.skipped, 0u);
    EXPECT_EQ(report.contact_lines, original.num_contacts());
  }
}

TEST(TraceParseProperty, FinalLineWithoutNewlineParses) {
  // Files truncated after the last record (no trailing '\n') are legal.
  std::istringstream in("# odtn-trace v1\n# nodes 2\n0 1 0 1");
  EXPECT_EQ(read_trace(in).num_contacts(), 1u);
}

TEST(TraceParseProperty, LinesSpanningChunkBoundariesParse) {
  // Force lines to straddle the parser's 64 KiB read chunks: a comment
  // block pushes the first contact right up against the boundary.
  std::string text = "# odtn-trace v1\n# nodes 2\n";
  text += "# " + std::string((1 << 16) - text.size() - 4, 'x') + "\n";
  text += "0 1 0.125 4096.5\n0 1 5000 6000.25\n";
  std::istringstream in(text);
  const auto g = read_trace(in);
  ASSERT_EQ(g.num_contacts(), 2u);
  EXPECT_EQ(g.contacts()[0], (Contact{0, 1, 0.125, 4096.5}));
  EXPECT_EQ(g.contacts()[1], (Contact{0, 1, 5000.0, 6000.25}));
}

TEST(TraceParseProperty, SeventeenDigitValuesSurvive) {
  // 0.1 has no finite binary expansion; precision-17 output must come
  // back as the same bit pattern.
  const double begin = 0.1;
  const double end = 0.1 + 0.2;  // 0.30000000000000004
  TemporalGraph g(2, {{0, 1, begin, end}});
  std::ostringstream out;
  write_trace(out, g);
  std::istringstream in(out.str());
  const auto restored = read_trace(in);
  ASSERT_EQ(restored.num_contacts(), 1u);
  EXPECT_EQ(restored.contacts()[0].begin, begin);
  EXPECT_EQ(restored.contacts()[0].end, end);
}

}  // namespace
}  // namespace odtn
