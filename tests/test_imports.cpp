#include "trace/imports.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace odtn {
namespace {

TEST(CrawdadImport, BasicZeroBased) {
  std::istringstream in(
      "# haggle contact list\n"
      "0 1 100 200\n"
      "1 2 150 300 extra columns ignored\n");
  const auto g = import_crawdad_contacts(in);
  EXPECT_EQ(g.num_nodes(), 3u);
  ASSERT_EQ(g.num_contacts(), 2u);
  EXPECT_DOUBLE_EQ(g.contacts()[0].begin, 100.0);
}

TEST(CrawdadImport, OneBasedIdsAreShifted) {
  std::istringstream in("1 2 0 10\n2 3 5 15\n");
  const auto g = import_crawdad_contacts(in);
  EXPECT_EQ(g.num_nodes(), 3u);
  EXPECT_EQ(g.contacts()[0].u, 0u);
  EXPECT_EQ(g.contacts()[0].v, 1u);
}

TEST(CrawdadImport, MixedZeroBasedNotShifted) {
  std::istringstream in("0 5 0 10\n");
  const auto g = import_crawdad_contacts(in);
  EXPECT_EQ(g.num_nodes(), 6u);
}

TEST(CrawdadImport, SkipsCommentsAndBlankLines) {
  std::istringstream in("; comment\n\n  # indented comment\n0 1 0 1\n");
  EXPECT_EQ(import_crawdad_contacts(in).num_contacts(), 1u);
}

TEST(CrawdadImport, EmptyInputGivesEmptyGraph) {
  std::istringstream in("# nothing\n");
  const auto g = import_crawdad_contacts(in);
  EXPECT_EQ(g.num_nodes(), 0u);
  EXPECT_EQ(g.num_contacts(), 0u);
}

TEST(CrawdadImport, MalformedLinesCarryLineNumbers) {
  std::istringstream bad("0 1 0 1\n0 1 oops 2\n");
  try {
    import_crawdad_contacts(bad);
    FAIL() << "expected parse error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
  std::istringstream self("3 3 0 1\n");
  EXPECT_THROW(import_crawdad_contacts(self), std::runtime_error);
  std::istringstream reversed("0 1 9 2\n");
  EXPECT_THROW(import_crawdad_contacts(reversed), std::runtime_error);
  std::istringstream negative("-1 1 0 2\n");
  EXPECT_THROW(import_crawdad_contacts(negative), std::runtime_error);
}

TEST(OneImport, PairsUpDownEvents) {
  std::istringstream in(
      "10.0 CONN 0 1 up\n"
      "20.0 CONN 2 1 up\n"
      "25.0 CONN 0 1 down\n"
      "40.0 CONN 2 1 down\n");
  const auto g = import_one_events(in);
  EXPECT_EQ(g.num_nodes(), 3u);
  ASSERT_EQ(g.num_contacts(), 2u);
  EXPECT_DOUBLE_EQ(g.contacts()[0].begin, 10.0);
  EXPECT_DOUBLE_EQ(g.contacts()[0].end, 25.0);
  // Pair order normalized to (min, max).
  EXPECT_EQ(g.contacts()[1].u, 1u);
  EXPECT_EQ(g.contacts()[1].v, 2u);
}

TEST(OneImport, OpenConnectionsClosedAtLastEvent) {
  std::istringstream in(
      "5.0 CONN 0 1 up\n"
      "50.0 CONN 2 3 up\n"
      "60.0 CONN 2 3 down\n");
  const auto g = import_one_events(in);
  ASSERT_EQ(g.num_contacts(), 2u);
  // The 0-1 connection never went down: closed at t = 60.
  EXPECT_DOUBLE_EQ(g.contacts()[0].end, 60.0);
}

TEST(OneImport, IgnoresNonConnEvents) {
  std::istringstream in(
      "1.0 CONN 0 1 up\n"
      "2.0 MSG 0 1 created\n"
      "3.0 CONN 0 1 down\n");
  EXPECT_EQ(import_one_events(in).num_contacts(), 1u);
}

TEST(OneImport, ProtocolViolationsThrow) {
  std::istringstream double_up("1 CONN 0 1 up\n2 CONN 0 1 up\n");
  EXPECT_THROW(import_one_events(double_up), std::runtime_error);
  std::istringstream orphan_down("1 CONN 0 1 down\n");
  EXPECT_THROW(import_one_events(orphan_down), std::runtime_error);
  std::istringstream out_of_order("5 CONN 0 1 up\n2 CONN 0 1 down\n");
  EXPECT_THROW(import_one_events(out_of_order), std::runtime_error);
  std::istringstream bad_state("1 CONN 0 1 sideways\n");
  EXPECT_THROW(import_one_events(bad_state), std::runtime_error);
}

TEST(Imports, MissingFilesThrow) {
  EXPECT_THROW(import_crawdad_contacts_file("/no/such/file"),
               std::runtime_error);
  EXPECT_THROW(import_one_events_file("/no/such/file"), std::runtime_error);
}

}  // namespace
}  // namespace odtn
