#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

namespace odtn {
namespace {

TEST(ThreadPool, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  const std::size_t n = 1000;
  std::vector<std::atomic<int>> hits(n);
  pool.parallel_for(n, [&](std::size_t i, unsigned) { ++hits[i]; });
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ThreadPool, WorkerIdsWithinRange) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.num_workers(), 3u);
  std::atomic<bool> bad{false};
  pool.parallel_for(200, [&](std::size_t, unsigned worker) {
    if (worker >= pool.num_workers()) bad = true;
  });
  EXPECT_FALSE(bad.load());
}

TEST(ThreadPool, PerWorkerScratchNeedsNoLocking) {
  ThreadPool pool(4);
  std::vector<std::size_t> per_worker(pool.num_workers(), 0);
  const std::size_t n = 5000;
  pool.parallel_for(n, [&](std::size_t, unsigned worker) {
    ++per_worker[worker];
  });
  EXPECT_EQ(std::accumulate(per_worker.begin(), per_worker.end(),
                            std::size_t{0}),
            n);
}

TEST(ThreadPool, ExceptionPropagates) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.parallel_for(100,
                        [&](std::size_t i, unsigned) {
                          if (i == 17) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
  // The pool survives the failed job.
  std::atomic<std::size_t> count{0};
  pool.parallel_for(10, [&](std::size_t, unsigned) { ++count; });
  EXPECT_EQ(count.load(), 10u);
}

TEST(ThreadPool, NestedParallelForRunsInlineAndCompletes) {
  // A parallel_for issued from inside a running parallel_for on the
  // same pool must not corrupt the outer job's cursor: the nested call
  // runs inline on the calling thread.
  ThreadPool pool(3);
  const std::size_t outer = 40, inner = 25;
  std::vector<std::atomic<std::size_t>> inner_hits(outer);
  std::vector<std::atomic<int>> outer_hits(outer);
  pool.parallel_for(outer, [&](std::size_t i, unsigned) {
    ++outer_hits[i];
    // Nested scratch stays local to this trial, as the contract asks.
    std::size_t local = 0;
    pool.parallel_for(inner, [&](std::size_t, unsigned) { ++local; });
    inner_hits[i] = local;
  });
  for (std::size_t i = 0; i < outer; ++i) {
    EXPECT_EQ(outer_hits[i].load(), 1);
    EXPECT_EQ(inner_hits[i].load(), inner);
  }
}

TEST(ThreadPool, ConcurrentExternalCallersBothComplete) {
  // Two unrelated threads hitting the same pool: one wins the job slot,
  // the other runs inline; both must see every index.
  ThreadPool pool(2);
  std::atomic<std::size_t> a{0}, b{0};
  std::thread other([&] {
    pool.parallel_for(3000, [&](std::size_t, unsigned) { ++a; });
  });
  pool.parallel_for(3000, [&](std::size_t, unsigned) { ++b; });
  other.join();
  EXPECT_EQ(a.load(), 3000u);
  EXPECT_EQ(b.load(), 3000u);
}

TEST(ThreadPool, SharedPoolIsReusable) {
  std::atomic<std::size_t> count{0};
  shared_thread_pool().parallel_for(64, [&](std::size_t, unsigned) {
    ++count;
  });
  EXPECT_EQ(count.load(), 64u);
}

}  // namespace
}  // namespace odtn
