// Property suite for the pooled engine's batched frontier kernels
// (core/frontier_kernels.hpp) and the PairArena-backed propagation mode.
//
// The Pareto front of a pair set is unique, so the batched prune+merge
// path must reproduce the seed DeliveryFunction::insert semantics BIT
// FOR BIT -- every test here asserts exact equality, not tolerance,
// except the all-pairs CDF cross-check (two accumulation orders, gated
// at 1e-9). Streams are derived with Rng::keyed so each trial is
// reproducible in isolation.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "core/diameter.hpp"
#include "core/frontier_kernels.hpp"
#include "core/optimal_paths.hpp"
#include "stats/log_grid.hpp"
#include "stats/measure_cdf.hpp"
#include "util/rng.hpp"
#include "util/simd.hpp"

namespace odtn {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Random pair whose coordinates are drawn from a small quantized set so
/// duplicates, equal-LD ties, and dominance chains are all common.
PathPair random_pair(Rng& rng) {
  const double ld = std::floor(rng.uniform(0.0, 40.0)) / 2.0;
  const double ea = std::floor(rng.uniform(-10.0, 40.0)) / 2.0;
  return {ld, ea};
}

/// Random frontier built through the reference insert() path.
DeliveryFunction random_frontier(Rng& rng, std::size_t attempts) {
  DeliveryFunction f;
  for (std::size_t i = 0; i < attempts; ++i) f.insert(random_pair(rng));
  return f;
}

std::vector<double> ld_lane(const DeliveryFunction& f) {
  std::vector<double> out;
  out.reserve(f.size());
  for (const PathPair& p : f.pairs()) out.push_back(p.ld);
  return out;
}

std::vector<double> ea_lane(const DeliveryFunction& f) {
  std::vector<double> out;
  out.reserve(f.size());
  for (const PathPair& p : f.pairs()) out.push_back(p.ea);
  return out;
}

/// Adversarial random trace (same regime as test_engine_crosscheck):
/// integer-quantized times so boundary coincidences are common, a fifth
/// of the contacts instantaneous.
TemporalGraph random_trace(Rng& rng, std::size_t nodes,
                           std::size_t num_contacts, double horizon,
                           bool directed = false, double time_shift = 0.0) {
  std::vector<Contact> contacts;
  contacts.reserve(num_contacts);
  for (std::size_t i = 0; i < num_contacts; ++i) {
    const auto u = static_cast<NodeId>(rng.below(nodes));
    auto v = static_cast<NodeId>(rng.below(nodes - 1));
    if (v >= u) ++v;
    const double begin = std::floor(rng.uniform(0.0, horizon)) + time_shift;
    const double extra =
        rng.bernoulli(0.2) ? 0.0 : std::floor(rng.uniform(1.0, horizon / 4));
    contacts.push_back({u, v, begin, begin + extra});
  }
  return TemporalGraph(nodes, std::move(contacts), directed);
}

// ---------------------------------------------------------------------
// Kernel level: prune_candidate_batch / merge_frontier vs insert().
// ---------------------------------------------------------------------

TEST(FrontierKernels, LowerBoundAndDominatesMatchDeliveryFunction) {
  for (std::uint64_t trial = 0; trial < 50; ++trial) {
    Rng rng = Rng::keyed(0xF0B1, trial);
    const DeliveryFunction f = random_frontier(rng, 1 + rng.below(30));
    const std::vector<double> ld = ld_lane(f), ea = ea_lane(f);
    for (int q = 0; q < 40; ++q) {
      const PathPair p = random_pair(rng);
      ASSERT_EQ(frontier_dominates(ld.data(), ea.data(), ld.size(), p.ld,
                                   p.ea),
                f.is_dominated(p))
          << "trial=" << trial << " ld=" << p.ld << " ea=" << p.ea;
      const std::size_t at =
          frontier_lower_bound(ld.data(), ld.size(), p.ld);
      ASSERT_TRUE(at == ld.size() || ld[at] >= p.ld);
      ASSERT_TRUE(at == 0 || ld[at - 1] < p.ld);
    }
  }
}

TEST(FrontierKernels, PruneBatchEqualsInsertAll) {
  for (std::uint64_t trial = 0; trial < 200; ++trial) {
    Rng rng = Rng::keyed(0xF0B2, trial);
    std::vector<PathPair> batch;
    const std::size_t m = rng.below(24);
    for (std::size_t i = 0; i < m; ++i) {
      batch.push_back(random_pair(rng));
      // Exact duplicates with positive probability.
      if (!batch.empty() && rng.bernoulli(0.15))
        batch.push_back(batch[rng.below(batch.size())]);
    }
    DeliveryFunction ref;
    for (const PathPair& p : batch) ref.insert(p);

    std::vector<PathPair> scratch = batch;
    const std::size_t kept = prune_candidate_batch(scratch.data(),
                                                   scratch.size());
    ASSERT_EQ(kept, ref.size()) << "trial=" << trial;
    for (std::size_t i = 0; i < kept; ++i)
      ASSERT_EQ(scratch[i], ref.pairs()[i]) << "trial=" << trial
                                            << " i=" << i;
  }
}

TEST(FrontierKernels, MergeFrontierEqualsInsertReference) {
  for (std::uint64_t trial = 0; trial < 300; ++trial) {
    Rng rng = Rng::keyed(0xF0B3, trial);
    const DeliveryFunction base = random_frontier(rng, rng.below(30));
    const std::vector<double> f_ld = ld_lane(base), f_ea = ea_lane(base);

    std::vector<PathPair> batch;
    const std::size_t raw = rng.below(16);
    for (std::size_t i = 0; i < raw; ++i) {
      if (rng.bernoulli(0.2) && !base.empty()) {
        // Exact duplicate of an existing frontier pair: must be merged
        // away AND not reported as newly kept.
        batch.push_back(base.pairs()[rng.below(base.size())]);
      } else {
        batch.push_back(random_pair(rng));
      }
    }
    const std::size_t m = prune_candidate_batch(batch.data(), batch.size());
    batch.resize(m);

    DeliveryFunction ref = base;
    for (const PathPair& p : batch) ref.insert(p);

    const std::size_t fn = base.size();
    std::vector<double> out_ld(fn + m), out_ea(fn + m);
    std::vector<double> d_ld(m), d_ea(m), d_succ(m);
    const FrontierMerge r = merge_frontier(
        f_ld.data(), f_ea.data(), fn, batch.data(), m, out_ld.data(),
        out_ea.data(), d_ld.data(), d_ea.data(), d_succ.data());

    // Merged frontier occupies the LAST kept slots, ascending, and is
    // bit-identical to the insert() reference.
    ASSERT_EQ(r.kept, ref.size()) << "trial=" << trial;
    const std::size_t off = fn + m - r.kept;
    for (std::size_t i = 0; i < r.kept; ++i) {
      ASSERT_EQ(out_ld[off + i], ref.pairs()[i].ld) << "trial=" << trial;
      ASSERT_EQ(out_ea[off + i], ref.pairs()[i].ea) << "trial=" << trial;
    }

    // Delta = merged pairs that are NOT bitwise present in the base,
    // ascending in the last kept_new slots, each with its successor's EA.
    std::vector<PathPair> expected_new;
    for (const PathPair& p : ref.pairs())
      if (std::find(base.pairs().begin(), base.pairs().end(), p) ==
          base.pairs().end())
        expected_new.push_back(p);
    ASSERT_EQ(r.kept_new, expected_new.size()) << "trial=" << trial;
    const std::size_t doff = m - r.kept_new;
    for (std::size_t i = 0; i < r.kept_new; ++i) {
      const PathPair got{d_ld[doff + i], d_ea[doff + i]};
      ASSERT_EQ(got, expected_new[i]) << "trial=" << trial << " i=" << i;
      // Successor EA in the merged frontier, +inf for the global last.
      const auto it = std::find(ref.pairs().begin(), ref.pairs().end(), got);
      ASSERT_NE(it, ref.pairs().end());
      const double succ =
          (it + 1 == ref.pairs().end()) ? kInf : (it + 1)->ea;
      ASSERT_EQ(d_succ[doff + i], succ) << "trial=" << trial << " i=" << i;
    }
  }
}

TEST(FrontierKernels, MergeEdgeCases) {
  std::vector<double> out_ld(8), out_ea(8), d_ld(8), d_ea(8), d_succ(8);

  // Empty frontier + one candidate.
  const PathPair c{5.0, 2.0};
  FrontierMerge r = merge_frontier(nullptr, nullptr, 0, &c, 1, out_ld.data(),
                                   out_ea.data(), d_ld.data(), d_ea.data(),
                                   d_succ.data());
  EXPECT_EQ(r.kept, 1u);
  EXPECT_EQ(r.kept_new, 1u);
  EXPECT_EQ(out_ld[0], 5.0);
  EXPECT_EQ(out_ea[0], 2.0);
  EXPECT_EQ(d_succ[0], kInf);

  // Identity pair (LD = +inf, EA = -inf) dominates everything.
  const double id_ld = kInf, id_ea = -kInf;
  r = merge_frontier(&id_ld, &id_ea, 1, &c, 1, out_ld.data(), out_ea.data(),
                     d_ld.data(), d_ea.data(), d_succ.data());
  EXPECT_EQ(r.kept, 1u);
  EXPECT_EQ(r.kept_new, 0u);
  EXPECT_EQ(out_ld[1], kInf);
  EXPECT_EQ(out_ea[1], -kInf);

  // Batch that is an exact duplicate of the frontier: unchanged, no new.
  const double f_ld[2] = {1.0, 3.0}, f_ea[2] = {0.5, 2.0};
  const PathPair dup[2] = {{1.0, 0.5}, {3.0, 2.0}};
  r = merge_frontier(f_ld, f_ea, 2, dup, 2, out_ld.data(), out_ea.data(),
                     d_ld.data(), d_ea.data(), d_succ.data());
  EXPECT_EQ(r.kept, 2u);
  EXPECT_EQ(r.kept_new, 0u);

  // Candidate that dominates the whole frontier replaces it.
  const PathPair strong{10.0, -1.0};
  r = merge_frontier(f_ld, f_ea, 2, &strong, 1, out_ld.data(), out_ea.data(),
                     d_ld.data(), d_ea.data(), d_succ.data());
  EXPECT_EQ(r.kept, 1u);
  EXPECT_EQ(r.kept_new, 1u);
  EXPECT_EQ(out_ld[2], 10.0);
  EXPECT_EQ(out_ea[2], -1.0);
}

// ---------------------------------------------------------------------
// Engine level: kPooled vs kIndexed vs kLevelSweep, every hop level.
// ---------------------------------------------------------------------

/// Steps all three modes side by side; frontiers must be bit-identical
/// at EVERY level, views must agree with materialized functions, and the
/// pooled free snapshots must equal the node's pre-step frontier.
void expect_pooled_identical(const TemporalGraph& g, NodeId src) {
  SingleSourceEngine pooled(g, src, EngineMode::kPooled);
  SingleSourceEngine indexed(g, src, EngineMode::kIndexed);
  SingleSourceEngine sweep(g, src, EngineMode::kLevelSweep);
  Rng rng = Rng::keyed(0xF0B5, (static_cast<std::uint64_t>(src) << 32) ^
                                   g.num_contacts());
  for (int level = 1; level <= 64; ++level) {
    std::vector<DeliveryFunction> before = pooled.frontiers();
    const bool p_grew = pooled.step();
    const bool i_grew = indexed.step();
    const bool s_grew = sweep.step();
    ASSERT_EQ(p_grew, i_grew) << "src=" << src << " level=" << level;
    ASSERT_EQ(p_grew, s_grew) << "src=" << src << " level=" << level;
    for (NodeId dst = 0; dst < g.num_nodes(); ++dst) {
      const DeliveryFunction f = pooled.frontier(dst);
      ASSERT_EQ(f, indexed.frontier(dst))
          << "src=" << src << " dst=" << dst << " level=" << level;
      ASSERT_EQ(f, sweep.frontier(dst))
          << "src=" << src << " dst=" << dst << " level=" << level;
      // View parity: SoA arena view == materialized function.
      const FrontierView view = pooled.frontier_view(dst);
      ASSERT_EQ(materialize(view), f);
      for (int q = 0; q < 4; ++q) {
        const double t = rng.uniform(-20.0, 140.0);
        ASSERT_EQ(view.deliver_at(t), f.deliver_at(t));
      }
    }
    // Free pre-change snapshots: last_changed()[i]'s retired span equals
    // its pre-step frontier, and every unlisted node is unchanged.
    std::vector<bool> listed(g.num_nodes(), false);
    const std::vector<NodeId>& changed = pooled.last_changed();
    for (std::size_t i = 0; i < changed.size(); ++i) {
      listed[changed[i]] = true;
      ASSERT_EQ(materialize(pooled.previous_frontier_view(i)),
                before[changed[i]])
          << "src=" << src << " level=" << level << " node=" << changed[i];
      ASSERT_NE(pooled.frontier(changed[i]), before[changed[i]]);
    }
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      if (!listed[v]) {
        ASSERT_EQ(pooled.frontier(v), before[v])
            << "src=" << src << " level=" << level << " node=" << v;
      }
    }
    if (!p_grew) break;
  }
  ASSERT_TRUE(pooled.at_fixpoint());
  ASSERT_TRUE(indexed.at_fixpoint());
}

struct TraceParam {
  std::uint64_t seed;
  std::size_t nodes;
  std::size_t contacts;
};

class PooledEngineParity : public ::testing::TestWithParam<TraceParam> {};

TEST_P(PooledEngineParity, BitIdenticalOnUndirectedTraces) {
  const auto param = GetParam();
  Rng rng = Rng::keyed(param.seed, 0);
  const TemporalGraph g = random_trace(rng, param.nodes, param.contacts,
                                       100.0);
  for (NodeId src = 0; src < std::min<std::size_t>(g.num_nodes(), 3); ++src)
    expect_pooled_identical(g, src);
}

TEST_P(PooledEngineParity, BitIdenticalOnDirectedTraces) {
  const auto param = GetParam();
  Rng rng = Rng::keyed(param.seed, 1);
  const TemporalGraph g = random_trace(rng, param.nodes, param.contacts,
                                       100.0, /*directed=*/true);
  for (NodeId src = 0; src < std::min<std::size_t>(g.num_nodes(), 3); ++src)
    expect_pooled_identical(g, src);
}

TEST_P(PooledEngineParity, BitIdenticalOnNegativeTimeTraces) {
  const auto param = GetParam();
  Rng rng = Rng::keyed(param.seed, 2);
  const TemporalGraph g = random_trace(rng, param.nodes, param.contacts,
                                       100.0, /*directed=*/false,
                                       /*time_shift=*/-1000.0);
  expect_pooled_identical(g, 0);
}

INSTANTIATE_TEST_SUITE_P(
    RandomTraces, PooledEngineParity,
    ::testing::Values(TraceParam{11, 5, 15}, TraceParam{12, 8, 40},
                      TraceParam{13, 10, 80}, TraceParam{14, 6, 25},
                      TraceParam{15, 12, 120}, TraceParam{16, 4, 60},
                      TraceParam{17, 15, 150}, TraceParam{18, 10, 10}));

// ---------------------------------------------------------------------
// Steady-state recycling: reset() keeps the arenas, peaks go flat.
// ---------------------------------------------------------------------

TEST(PooledEngine, ResetRecyclesArenasWithZeroGrowth) {
  Rng rng = Rng::keyed(0xF0B6, 0);
  const TemporalGraph g = random_trace(rng, 12, 150, 100.0);
  SingleSourceEngine engine(g, 0, EngineMode::kPooled);

  auto full_pass = [&] {
    for (NodeId src = 0; src < g.num_nodes(); ++src) {
      engine.reset(src);
      engine.run_to_fixpoint();
    }
  };
  full_pass();
  const EngineStats warm = engine.stats();
  ASSERT_GT(warm.arena_bytes_peak, 0u);
  ASSERT_GT(warm.merge_batches, 0u);
  full_pass();
  const EngineStats steady = engine.stats();

  // The workspace was materialized exactly once; every further source is
  // a reuse and the arenas never grow past the first pass's high water.
  EXPECT_EQ(steady.workspace_allocations, 1u);
  EXPECT_EQ(steady.workspace_reuses, 2 * g.num_nodes());
  EXPECT_EQ(steady.arena_bytes_peak, warm.arena_bytes_peak);
  EXPECT_EQ(steady.pairs_peak, warm.pairs_peak);

  // And a recycled engine still computes the right frontiers.
  engine.reset(3);
  engine.run_to_fixpoint();
  SingleSourceEngine fresh(g, 3, EngineMode::kIndexed);
  fresh.run_to_fixpoint();
  for (NodeId dst = 0; dst < g.num_nodes(); ++dst)
    ASSERT_EQ(engine.frontier(dst), fresh.frontier(dst)) << "dst=" << dst;
}

TEST(PooledEngine, TrackChangesContractPerMode) {
  Rng rng = Rng::keyed(0xF0B7, 0);
  const TemporalGraph g = random_trace(rng, 6, 30, 50.0);
  // kPooled: tracking is inherently on; the call is a validated no-op.
  SingleSourceEngine pooled(g, 0, EngineMode::kPooled);
  EXPECT_NO_THROW(pooled.track_changes(true));
  // kLevelSweep has no delta machinery at all.
  SingleSourceEngine sweep(g, 0, EngineMode::kLevelSweep);
  EXPECT_THROW(sweep.track_changes(true), std::logic_error);
}

// ---------------------------------------------------------------------
// All-pairs CDF: pooled + incremental vs level-sweep + direct.
// ---------------------------------------------------------------------

TEST(PooledEngine, DelayCdfMatchesDirectWithinTolerance) {
  Rng rng = Rng::keyed(0xF0B8, 0);
  const TemporalGraph g = random_trace(rng, 14, 200, 300.0);

  DelayCdfOptions base;
  base.grid = make_log_grid(1.0, 400.0, 24);
  base.max_hops = 8;
  base.num_threads = 1;
  // Two disjoint start-time windows (the §5.3.1 day-time regime).
  base.windows = {{10.0, 120.0}, {180.0, 290.0}};

  DelayCdfOptions pooled = base;
  pooled.engine = EngineMode::kPooled;
  pooled.accumulation = CdfAccumulation::kAuto;  // -> incremental
  DelayCdfOptions direct = base;
  direct.engine = EngineMode::kLevelSweep;
  direct.accumulation = CdfAccumulation::kDirect;

  const DelayCdfResult a = compute_delay_cdf(g, pooled);
  const DelayCdfResult b = compute_delay_cdf(g, direct);
  ASSERT_EQ(a.cdf_by_hops.size(), b.cdf_by_hops.size());
  for (std::size_t k = 0; k < a.cdf_by_hops.size(); ++k)
    for (std::size_t j = 0; j < a.grid.size(); ++j)
      ASSERT_NEAR(a.cdf_by_hops[k][j], b.cdf_by_hops[k][j], 1e-9)
          << "k=" << k + 1 << " j=" << j;
  for (std::size_t j = 0; j < a.grid.size(); ++j)
    ASSERT_NEAR(a.cdf_unbounded[j], b.cdf_unbounded[j], 1e-9);
  EXPECT_EQ(a.fixpoint_hops, b.fixpoint_hops);
  for (const double eps : {0.001, 0.01, 0.1})
    EXPECT_EQ(a.diameter(eps), b.diameter(eps)) << "eps=" << eps;
  // The pooled run recycles one workspace per worker thread.
  EXPECT_EQ(a.stats.workspace_allocations, 1u);
  EXPECT_GT(a.stats.arena_bytes_peak, 0u);
}

// ---------------------------------------------------------------------
// SIMD dispatch: every CPU-supported level must be bit-identical to the
// scalar reference -- primitives first (unaligned offsets, tail lengths
// 0..15, denormals, +/-0.0), then the dispatched kernels, then a whole
// delay-CDF run.
// ---------------------------------------------------------------------

std::vector<simd::Level> vector_levels() {
  std::vector<simd::Level> out;
  if (simd::cpu_supports(simd::Level::kSse42))
    out.push_back(simd::Level::kSse42);
  if (simd::cpu_supports(simd::Level::kAvx2))
    out.push_back(simd::Level::kAvx2);
  return out;
}

/// Forces a dispatch level for one scope; restores the entry level.
class ScopedSimdLevel {
 public:
  explicit ScopedSimdLevel(simd::Level level)
      : saved_(simd::active_level()) {
    EXPECT_TRUE(simd::set_level(level));
  }
  ~ScopedSimdLevel() { simd::set_level(saved_); }

 private:
  simd::Level saved_;
};

/// Adversarial payload values: zeros of both signs, denormals, values a
/// ULP apart, and infinities (the identity pair's lanes).
double tricky_value(Rng& rng) {
  static const double pool[] = {
      0.0,
      -0.0,
      std::numeric_limits<double>::denorm_min(),
      -std::numeric_limits<double>::denorm_min(),
      std::numeric_limits<double>::min(),
      1.0,
      std::nextafter(1.0, 2.0),
      -1.0,
      2.5,
      1e300,
      -1e300,
      kInf,
      -kInf,
  };
  return pool[rng.below(sizeof(pool) / sizeof(pool[0]))];
}

TEST(SimdParity, CountTailGeMatchesScalar) {
  const simd::Ops& ref = simd::ops_for(simd::Level::kScalar);
  for (const simd::Level level : vector_levels()) {
    const simd::Ops& ops = simd::ops_for(level);
    for (std::uint64_t trial = 0; trial < 40; ++trial) {
      Rng rng = Rng::keyed(0x51D0, (static_cast<std::uint64_t>(level) << 32) ^
                                       trial);
      std::vector<double> buf(96);
      for (double& v : buf) v = tricky_value(rng);
      for (std::size_t off = 0; off < 8; ++off) {
        for (std::size_t n = 0; n <= 16; ++n) {
          const double bound = tricky_value(rng);
          ASSERT_EQ(ops.count_tail_ge(buf.data() + off, n, bound),
                    ref.count_tail_ge(buf.data() + off, n, bound))
              << simd::level_name(level) << " off=" << off << " n=" << n
              << " bound=" << bound;
        }
        const std::size_t big = 17 + rng.below(60);
        const double bound = tricky_value(rng);
        ASSERT_EQ(ops.count_tail_ge(buf.data() + off, big, bound),
                  ref.count_tail_ge(buf.data() + off, big, bound))
            << simd::level_name(level) << " off=" << off << " n=" << big;
      }
      // Strided (AoS ea lane) form over the same buffer.
      for (std::size_t n = 0; n <= 15; ++n) {
        const double bound = tricky_value(rng);
        ASSERT_EQ(ops.count_tail_ge_stride2(buf.data() + 1, n, bound),
                  ref.count_tail_ge_stride2(buf.data() + 1, n, bound))
            << simd::level_name(level) << " n=" << n;
      }
      const std::size_t big = 16 + rng.below(32);
      const double bound = tricky_value(rng);
      ASSERT_EQ(ops.count_tail_ge_stride2(buf.data() + 1, big, bound),
                ref.count_tail_ge_stride2(buf.data() + 1, big, bound))
          << simd::level_name(level) << " n=" << big;
    }
  }
}

TEST(SimdParity, EqualPrefixSuffixMatchesScalar) {
  const simd::Ops& ref = simd::ops_for(simd::Level::kScalar);
  for (const simd::Level level : vector_levels()) {
    const simd::Ops& ops = simd::ops_for(level);
    for (std::uint64_t trial = 0; trial < 60; ++trial) {
      Rng rng = Rng::keyed(0x51D1, (static_cast<std::uint64_t>(level) << 32) ^
                                       trial);
      const std::size_t an = rng.below(40), bn = rng.below(40);
      std::vector<double> a0(an), a1(an), b0(bn), b1(bn);
      for (std::size_t i = 0; i < an; ++i) {
        a0[i] = tricky_value(rng);
        a1[i] = tricky_value(rng);
      }
      // Start from a copy so long shared prefixes/suffixes are the norm,
      // then knock holes into it; +/-0.0 flips stay value-equal and must
      // NOT end a run.
      for (std::size_t i = 0; i < bn; ++i) {
        b0[i] = i < an ? a0[i] : tricky_value(rng);
        b1[i] = i < an ? a1[i] : tricky_value(rng);
        if (rng.bernoulli(0.12)) b0[i] = tricky_value(rng);
        if (rng.bernoulli(0.12)) b1[i] = tricky_value(rng);
        if (b0[i] == 0.0 && rng.bernoulli(0.5)) b0[i] = -b0[i];
        if (b1[i] == 0.0 && rng.bernoulli(0.5)) b1[i] = -b1[i];
      }
      const std::size_t match_max = std::min(an, bn);
      const std::size_t p_ref =
          ref.equal_prefix2(a0.data(), a1.data(), b0.data(), b1.data(),
                            match_max);
      ASSERT_EQ(ops.equal_prefix2(a0.data(), a1.data(), b0.data(), b1.data(),
                                  match_max),
                p_ref)
          << simd::level_name(level) << " trial=" << trial;
      const std::size_t cap = match_max - p_ref;
      ASSERT_EQ(ops.equal_suffix2(a0.data(), a1.data(), an, b0.data(),
                                  b1.data(), bn, cap),
                ref.equal_suffix2(a0.data(), a1.data(), an, b0.data(),
                                  b1.data(), bn, cap))
          << simd::level_name(level) << " trial=" << trial;
    }
  }
}

TEST(SimdParity, LowerBound4MatchesStdLowerBound) {
  const simd::Ops& ref = simd::ops_for(simd::Level::kScalar);
  for (const simd::Level level : vector_levels()) {
    const simd::Ops& ops = simd::ops_for(level);
    for (const std::size_t n : {std::size_t{0}, std::size_t{1},
                                std::size_t{2}, std::size_t{3},
                                std::size_t{7}, std::size_t{48},
                                std::size_t{100}}) {
      Rng rng = Rng::keyed(0x51D2, (static_cast<std::uint64_t>(level) << 32) ^
                                       n);
      std::vector<double> grid(n);
      double acc = -3.0;
      for (double& g : grid) {
        acc += 0.25 + rng.uniform(0.0, 2.0);
        g = acc;
      }
      for (int round = 0; round < 50; ++round) {
        double keys[4];
        for (double& k : keys) {
          switch (rng.below(4)) {
            case 0:
              k = tricky_value(rng);
              break;
            case 1:
              k = n > 0 ? grid[rng.below(n)] : 0.0;  // exact grid hit
              break;
            case 2:
              k = rng.uniform(-5.0, acc + 5.0);
              break;
            default:
              k = rng.bernoulli(0.5) ? kInf : -kInf;
          }
        }
        std::uint32_t got[4], want[4];
        ops.lower_bound4(grid.data(), n, keys, got);
        ref.lower_bound4(grid.data(), n, keys, want);
        for (int k = 0; k < 4; ++k) {
          const auto std_idx = static_cast<std::uint32_t>(
              std::lower_bound(grid.begin(), grid.end(), keys[k]) -
              grid.begin());
          ASSERT_EQ(want[k], std_idx) << "scalar vs std n=" << n;
          ASSERT_EQ(got[k], std_idx)
              << simd::level_name(level) << " n=" << n << " key=" << keys[k];
        }
      }
    }
  }
}

/// Random pair stream with occasional -0.0 lanes and denormal-scale
/// values, still frontier-legal (no NaNs).
PathPair tricky_pair(Rng& rng) {
  PathPair p = random_pair(rng);
  if (p.ld == 0.0 && rng.bernoulli(0.5)) p.ld = -0.0;
  if (p.ea == 0.0 && rng.bernoulli(0.5)) p.ea = -0.0;
  if (rng.bernoulli(0.05))
    p.ea = std::numeric_limits<double>::denorm_min() *
           static_cast<double>(1 + rng.below(8));
  return p;
}

TEST(SimdParity, PruneAndMergeBitIdenticalAcrossLevels) {
  for (const simd::Level level : vector_levels()) {
    ScopedSimdLevel forced(level);
    for (std::uint64_t trial = 0; trial < 150; ++trial) {
      Rng rng = Rng::keyed(0x51D3, (static_cast<std::uint64_t>(level) << 32) ^
                                       trial);
      // Large enough batches and frontiers to exercise the vector loops,
      // small enough that ties and dominance chains stay common.
      std::vector<PathPair> batch;
      const std::size_t raw = rng.below(64);
      for (std::size_t i = 0; i < raw; ++i) batch.push_back(tricky_pair(rng));
      std::vector<PathPair> scalar_batch = batch;
      const std::size_t kept =
          prune_candidate_batch(batch.data(), batch.size());
      const std::size_t kept_ref = prune_candidate_batch_scalar(
          scalar_batch.data(), scalar_batch.size());
      ASSERT_EQ(kept, kept_ref)
          << simd::level_name(level) << " trial=" << trial;
      for (std::size_t i = 0; i < kept; ++i)
        ASSERT_EQ(batch[i], scalar_batch[i])
            << simd::level_name(level) << " trial=" << trial << " i=" << i;

      DeliveryFunction base;
      const std::size_t attempts = rng.below(180);
      for (std::size_t i = 0; i < attempts; ++i) base.insert(tricky_pair(rng));
      const std::vector<double> f_ld = ld_lane(base), f_ea = ea_lane(base);
      const std::size_t fn = base.size(), m = kept;
      std::vector<double> out_ld(fn + m), out_ea(fn + m);
      std::vector<double> d_ld(m), d_ea(m), d_succ(m);
      std::vector<double> ref_out_ld(fn + m), ref_out_ea(fn + m);
      std::vector<double> ref_d_ld(m), ref_d_ea(m), ref_d_succ(m);
      const FrontierMerge got = merge_frontier(
          f_ld.data(), f_ea.data(), fn, batch.data(), m, out_ld.data(),
          out_ea.data(), d_ld.data(), d_ea.data(), d_succ.data());
      const FrontierMerge want = merge_frontier_scalar(
          f_ld.data(), f_ea.data(), fn, batch.data(), m, ref_out_ld.data(),
          ref_out_ea.data(), ref_d_ld.data(), ref_d_ea.data(),
          ref_d_succ.data());
      ASSERT_EQ(got.kept, want.kept)
          << simd::level_name(level) << " trial=" << trial;
      ASSERT_EQ(got.kept_new, want.kept_new)
          << simd::level_name(level) << " trial=" << trial;
      for (std::size_t i = fn + m - got.kept; i < fn + m; ++i) {
        ASSERT_EQ(out_ld[i], ref_out_ld[i]) << "trial=" << trial;
        ASSERT_EQ(out_ea[i], ref_out_ea[i]) << "trial=" << trial;
      }
      for (std::size_t i = m - got.kept_new; i < m; ++i) {
        ASSERT_EQ(d_ld[i], ref_d_ld[i]) << "trial=" << trial;
        ASSERT_EQ(d_ea[i], ref_d_ea[i]) << "trial=" << trial;
        ASSERT_EQ(d_succ[i], ref_d_succ[i]) << "trial=" << trial;
      }
    }
  }
}

TEST(SimdParity, AddDeliverySegmentsBitIdenticalAcrossLevels) {
  const std::vector<double> grid = make_log_grid(1.0, 500.0, 48);
  for (const simd::Level level : vector_levels()) {
    for (std::uint64_t trial = 0; trial < 60; ++trial) {
      Rng rng = Rng::keyed(0x51D4, (static_cast<std::uint64_t>(level) << 32) ^
                                       trial);
      DeliveryFunction f;
      const std::size_t attempts = 1 + rng.below(120);
      for (std::size_t i = 0; i < attempts; ++i) f.insert(random_pair(rng));
      const std::vector<double> ld = ld_lane(f), ea = ea_lane(f);
      const double t_lo = rng.uniform(-5.0, 5.0);
      const double t_hi = t_lo + rng.uniform(0.0, 30.0);
      const std::pair<double, double> windows[2] = {
          {t_lo, t_lo + (t_hi - t_lo) / 3.0},
          {t_lo + (t_hi - t_lo) / 2.0, t_hi}};

      MeasureCdfAccumulator vec_acc(grid), ref_acc(grid);
      {
        ScopedSimdLevel forced(level);
        vec_acc.add_delivery_segments(ld.data(), ea.data(), ld.size(), t_lo,
                                      t_hi);
        vec_acc.add_delivery_segments(ld.data(), ea.data(), ld.size(),
                                      windows, 2, -0.5);
      }
      {
        ScopedSimdLevel forced(simd::Level::kScalar);
        ref_acc.add_delivery_segments(ld.data(), ea.data(), ld.size(), t_lo,
                                      t_hi);
        ref_acc.add_delivery_segments(ld.data(), ea.data(), ld.size(),
                                      windows, 2, -0.5);
      }
      vec_acc.add_observation_measure(t_hi - t_lo);
      ref_acc.add_observation_measure(t_hi - t_lo);
      const std::vector<double> got = vec_acc.cdf(), want = ref_acc.cdf();
      for (std::size_t j = 0; j < grid.size(); ++j)
        ASSERT_EQ(got[j], want[j])
            << simd::level_name(level) << " trial=" << trial << " j=" << j;
    }
  }
}

TEST(SimdParity, DelayCdfBitIdenticalAcrossLevels) {
  Rng rng = Rng::keyed(0x51D5, 0);
  const TemporalGraph g = random_trace(rng, 12, 160, 200.0);
  DelayCdfOptions opt;
  opt.grid = make_log_grid(1.0, 300.0, 24);
  opt.max_hops = 6;
  opt.num_threads = 1;
  opt.engine = EngineMode::kPooled;
  opt.accumulation = CdfAccumulation::kAuto;

  ScopedSimdLevel baseline(simd::Level::kScalar);
  const DelayCdfResult want = compute_delay_cdf(g, opt);
  for (const simd::Level level : vector_levels()) {
    ScopedSimdLevel forced(level);
    const DelayCdfResult got = compute_delay_cdf(g, opt);
    ASSERT_EQ(got.fixpoint_hops, want.fixpoint_hops);
    for (std::size_t k = 0; k < want.cdf_by_hops.size(); ++k)
      for (std::size_t j = 0; j < want.grid.size(); ++j)
        ASSERT_EQ(got.cdf_by_hops[k][j], want.cdf_by_hops[k][j])
            << simd::level_name(level) << " k=" << k << " j=" << j;
    for (std::size_t j = 0; j < want.grid.size(); ++j)
      ASSERT_EQ(got.cdf_unbounded[j], want.cdf_unbounded[j])
          << simd::level_name(level) << " j=" << j;
  }
}

}  // namespace
}  // namespace odtn
