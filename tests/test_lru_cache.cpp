#include "util/lru_cache.hpp"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

namespace odtn {
namespace {

using Cache = ShardedLruCache<int, std::string>;

std::shared_ptr<const std::string> val(const char* s) {
  return std::make_shared<const std::string>(s);
}

TEST(LruCache, MissThenHit) {
  Cache cache(1024, 1);
  EXPECT_EQ(cache.get(1), nullptr);
  EXPECT_EQ(cache.put(1, val("one"), 100), 0u);
  const auto hit = cache.get(1);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(*hit, "one");
  const LruCacheStats s = cache.stats();
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.inserts, 1u);
  EXPECT_EQ(s.evictions, 0u);
  EXPECT_EQ(s.bytes, 100u);
  EXPECT_EQ(s.entries, 1u);
}

TEST(LruCache, EvictsLeastRecentlyUsedFirst) {
  // One shard so the eviction order is fully deterministic: budget fits
  // exactly three 100-byte entries.
  Cache cache(300, 1);
  cache.put(1, val("a"), 100);
  cache.put(2, val("b"), 100);
  cache.put(3, val("c"), 100);
  // Touch 1 so 2 becomes the LRU tail.
  EXPECT_NE(cache.get(1), nullptr);
  EXPECT_EQ(cache.put(4, val("d"), 100), 1u);
  EXPECT_EQ(cache.get(2), nullptr);  // evicted
  EXPECT_NE(cache.get(1), nullptr);
  EXPECT_NE(cache.get(3), nullptr);
  EXPECT_NE(cache.get(4), nullptr);
}

TEST(LruCache, ByteBudgetNotEntryCount) {
  Cache cache(250, 1);
  cache.put(1, val("a"), 100);
  cache.put(2, val("b"), 100);
  // A 200-byte insert must displace BOTH residents (100+100+200 > 250).
  EXPECT_EQ(cache.put(3, val("big"), 200), 2u);
  EXPECT_EQ(cache.get(1), nullptr);
  EXPECT_EQ(cache.get(2), nullptr);
  EXPECT_NE(cache.get(3), nullptr);
  EXPECT_EQ(cache.stats().bytes, 200u);
}

TEST(LruCache, OversizedEntryEvictsItself) {
  Cache cache(100, 1);
  EXPECT_EQ(cache.put(1, val("huge"), 500), 1u);
  EXPECT_EQ(cache.get(1), nullptr);
  const LruCacheStats s = cache.stats();
  EXPECT_EQ(s.bytes, 0u);
  EXPECT_EQ(s.entries, 0u);
  EXPECT_EQ(s.evictions, 1u);
}

TEST(LruCache, OverwriteReplacesValueAndCost) {
  Cache cache(1000, 1);
  cache.put(1, val("old"), 400);
  cache.put(1, val("new"), 100);
  const auto hit = cache.get(1);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(*hit, "new");
  const LruCacheStats s = cache.stats();
  EXPECT_EQ(s.inserts, 1u);  // overwrite is not a second insert
  EXPECT_EQ(s.bytes, 100u);
  EXPECT_EQ(s.entries, 1u);
}

TEST(LruCache, OverwriteRefreshesRecency) {
  Cache cache(300, 1);
  cache.put(1, val("a"), 100);
  cache.put(2, val("b"), 100);
  cache.put(1, val("a2"), 100);  // 2 is now the LRU
  cache.put(3, val("c"), 100);
  cache.put(4, val("d"), 100);
  EXPECT_EQ(cache.get(2), nullptr);
  EXPECT_NE(cache.get(1), nullptr);
}

TEST(LruCache, HitKeepsValueAliveAcrossEviction) {
  Cache cache(100, 1);
  cache.put(1, val("pinned"), 100);
  const auto pinned = cache.get(1);
  ASSERT_NE(pinned, nullptr);
  cache.put(2, val("evictor"), 100);  // evicts key 1
  EXPECT_EQ(cache.get(1), nullptr);
  EXPECT_EQ(*pinned, "pinned");  // the shared_ptr outlives the entry
}

TEST(LruCache, ClearDropsEntriesKeepsCounters) {
  Cache cache(1000, 2);
  cache.put(1, val("a"), 10);
  cache.put(2, val("b"), 10);
  cache.get(1);
  cache.clear();
  const LruCacheStats s = cache.stats();
  EXPECT_EQ(s.entries, 0u);
  EXPECT_EQ(s.bytes, 0u);
  EXPECT_EQ(s.inserts, 2u);
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(cache.get(1), nullptr);
}

TEST(LruCache, ZeroBudgetCachesNothing) {
  Cache cache(0, 4);
  EXPECT_EQ(cache.put(1, val("x"), 1), 1u);
  EXPECT_EQ(cache.get(1), nullptr);
  EXPECT_EQ(cache.stats().entries, 0u);
}

TEST(LruCache, ShardCountClampedToOne) {
  Cache cache(100, 0);
  EXPECT_EQ(cache.num_shards(), 1u);
  cache.put(7, val("x"), 10);
  EXPECT_NE(cache.get(7), nullptr);
}

TEST(LruCache, CountersAreExactAcrossMixedTraffic) {
  Cache cache(10 * 64, 1);
  std::uint64_t expect_evictions = 0;
  for (int i = 0; i < 100; ++i) expect_evictions += cache.put(i, val("v"), 64);
  // 100 inserts into a 10-slot shard: the first 10 fill it, each of the
  // remaining 90 displaces exactly one.
  EXPECT_EQ(expect_evictions, 90u);
  const LruCacheStats s = cache.stats();
  EXPECT_EQ(s.inserts, 100u);
  EXPECT_EQ(s.evictions, 90u);
  EXPECT_EQ(s.entries, 10u);
  EXPECT_EQ(s.bytes, 10u * 64u);
  // Exactly the 10 newest survive.
  for (int i = 0; i < 90; ++i) EXPECT_EQ(cache.get(i), nullptr);
  for (int i = 90; i < 100; ++i) EXPECT_NE(cache.get(i), nullptr);
  EXPECT_EQ(cache.stats().hits, 10u);
  EXPECT_EQ(cache.stats().misses, 90u);
}

// Concurrent readers/writers over a small shared cache; run under TSan
// (the tsan preset) this is the data-race gate for the sharded locking.
TEST(LruCache, ConcurrentGetPutIsSafe) {
  ShardedLruCache<int, int> cache(64 * 32, 4);
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 2000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, t] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        const int key = (t * 31 + i * 7) % 64;
        if (i % 3 == 0) {
          cache.put(key, std::make_shared<const int>(key * 10), 32);
        } else if (const auto hit = cache.get(key)) {
          // A hit must always carry the value put under that key.
          EXPECT_EQ(*hit, key * 10);
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();
  // Every i with i % 3 != 0 issues exactly one get; each get is a hit or
  // a miss, never both.
  constexpr std::uint64_t kGetsPerThread =
      kOpsPerThread - (kOpsPerThread + 2) / 3;
  const LruCacheStats s = cache.stats();
  EXPECT_EQ(s.hits + s.misses, kThreads * kGetsPerThread);
  EXPECT_LE(s.bytes, 64u * 32u);
}

TEST(LruCache, OverwriteReleasesOldCostBeforeCharging) {
  // Regression guard for overwrite accounting: replacing a resident key
  // must release the old entry's bytes first, never double-charge, and
  // never count the replacement itself as an eviction.
  Cache cache(300, 1);
  EXPECT_EQ(cache.put(1, val("a"), 100), 0u);
  EXPECT_EQ(cache.put(1, val("bigger"), 250), 0u);  // 100 released, 250 fits
  LruCacheStats s = cache.stats();
  EXPECT_EQ(s.bytes, 250u);
  EXPECT_EQ(s.entries, 1u);
  EXPECT_EQ(s.evictions, 0u);
  const auto hit = cache.get(1);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(*hit, "bigger");

  // Shrinking overwrite frees budget for a neighbor.
  EXPECT_EQ(cache.put(1, val("small"), 50), 0u);
  EXPECT_EQ(cache.stats().bytes, 50u);
  EXPECT_EQ(cache.put(2, val("b"), 250), 0u);
  EXPECT_EQ(cache.stats().bytes, 300u);
  EXPECT_EQ(cache.stats().entries, 2u);
}

TEST(LruCache, GrowingOverwriteEvictsOthersNotItself) {
  Cache cache(300, 1);
  cache.put(1, val("a"), 100);
  cache.put(2, val("b"), 100);
  cache.put(3, val("c"), 100);
  // Overwriting 2 with a 200-byte value: 100 released, 200 charged, so
  // exactly one LRU victim (key 1) must go -- the overwritten entry is
  // fresh at the head and must survive.
  EXPECT_EQ(cache.put(2, val("big"), 200), 1u);
  EXPECT_EQ(cache.get(1), nullptr);
  ASSERT_NE(cache.get(2), nullptr);
  EXPECT_EQ(*cache.get(2), "big");
  EXPECT_NE(cache.get(3), nullptr);
  const LruCacheStats s = cache.stats();
  EXPECT_EQ(s.bytes, 300u);
  EXPECT_EQ(s.evictions, 1u);
}

}  // namespace
}  // namespace odtn
