#include "trace/wlan_generator.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "util/time_format.hpp"

namespace odtn {
namespace {

WlanTraceSpec small_spec() {
  WlanTraceSpec spec;
  spec.num_devices = 30;
  spec.num_access_points = 10;
  spec.duration = 3 * kDay;
  spec.sessions_per_day = 6.0;
  return spec;
}

TEST(WlanGenerator, Deterministic) {
  const auto a = generate_wlan_trace(small_spec(), 1);
  const auto b = generate_wlan_trace(small_spec(), 1);
  EXPECT_TRUE(std::ranges::equal(a.graph.contacts(), b.graph.contacts()));
  EXPECT_EQ(a.num_sessions, b.num_sessions);
  const auto c = generate_wlan_trace(small_spec(), 2);
  EXPECT_FALSE(std::ranges::equal(a.graph.contacts(), c.graph.contacts()));
}

TEST(WlanGenerator, SessionVolumeNearExpectation) {
  const auto t = generate_wlan_trace(small_spec(), 3);
  const double expected = 30 * 6.0 * 3.0;  // devices * per-day * days
  EXPECT_NEAR(static_cast<double>(t.num_sessions), expected,
              5.0 * std::sqrt(expected));
}

TEST(WlanGenerator, ContactsAreValidOverlaps) {
  const auto t = generate_wlan_trace(small_spec(), 4);
  EXPECT_GT(t.graph.num_contacts(), 0u);
  for (const Contact& c : t.graph.contacts()) {
    EXPECT_LT(c.begin, c.end);  // overlaps have positive length
    EXPECT_GE(c.begin, 0.0);
    EXPECT_LE(c.end, 3 * kDay);
    EXPECT_NE(c.u, c.v);
  }
}

TEST(WlanGenerator, ContactsFollowCampusRhythm) {
  auto spec = small_spec();
  spec.duration = 7 * kDay;
  const auto t = generate_wlan_trace(spec, 5);
  std::size_t work = 0, night = 0;
  for (const Contact& c : t.graph.contacts()) {
    const double hour = std::fmod(c.begin, kDay) / kHour;
    if (hour >= 9 && hour < 17) ++work;
    if (hour >= 1 && hour < 6) ++night;
  }
  EXPECT_GT(work, 5 * std::max<std::size_t>(night, 1));
}

TEST(WlanGenerator, HomeApBiasCreatesRepeatPairs) {
  // With strong home bias, some pairs meet many times (same dorm);
  // with zero bias, contacts scatter across AP population.
  auto habitual = small_spec();
  habitual.home_ap_bias = 0.95;
  habitual.home_aps = 1;
  auto roaming = small_spec();
  roaming.home_ap_bias = 0.0;
  const auto a = generate_wlan_trace(habitual, 6);
  const auto b = generate_wlan_trace(roaming, 6);
  // Repeat-contact concentration: contacts per connected pair.
  const double conc_a = static_cast<double>(a.graph.num_contacts()) /
                        static_cast<double>(a.graph.num_connected_pairs());
  const double conc_b = static_cast<double>(b.graph.num_contacts()) /
                        static_cast<double>(b.graph.num_connected_pairs());
  EXPECT_GT(conc_a, conc_b);
}

TEST(WlanGenerator, InvalidSpecsThrow) {
  auto spec = small_spec();
  spec.num_devices = 1;
  EXPECT_THROW(generate_wlan_trace(spec, 1), std::invalid_argument);
  spec = small_spec();
  spec.num_access_points = 0;
  EXPECT_THROW(generate_wlan_trace(spec, 1), std::invalid_argument);
  spec = small_spec();
  spec.duration = 0.0;
  EXPECT_THROW(generate_wlan_trace(spec, 1), std::invalid_argument);
}

}  // namespace
}  // namespace odtn
