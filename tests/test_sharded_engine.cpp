// Tests of the sharded all-pairs engine (core/sharded_engine.hpp):
// bit-identity of sharded vs unsharded results for every policy and
// shard count, and the versioned wire format of the shard messages.
#include "core/sharded_engine.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "core/diameter.hpp"
#include "core/partition.hpp"
#include "stats/log_grid.hpp"
#include "util/rng.hpp"

namespace odtn {
namespace {

TemporalGraph random_graph(std::uint64_t seed, std::size_t nodes,
                           int contacts, bool directed = false,
                           double t0 = 0.0) {
  Rng rng(seed);
  std::vector<Contact> cs;
  for (int i = 0; i < contacts; ++i) {
    const auto u = static_cast<NodeId>(rng.below(nodes));
    auto v = static_cast<NodeId>(rng.below(nodes - 1));
    if (v >= u) ++v;
    const double b = t0 + rng.uniform(0, 100);
    cs.push_back({u, v, b, b + rng.uniform(0, 5)});
  }
  return TemporalGraph(nodes, std::move(cs), directed);
}

DelayCdfOptions base_options() {
  DelayCdfOptions opt;
  opt.grid = make_log_grid(0.1, 200.0, 24);
  opt.max_hops = 5;
  opt.num_threads = 1;
  return opt;
}

// Additive counters and peaks must agree; workspace_allocations/reuses
// are excluded BY DESIGN: the sharded driver allocates one engine
// workspace per shard while the unsharded driver allocates one per
// worker, so those two counters describe execution structure, not work
// done (their sum still equals the source count either way).
void expect_equivalent_stats(const EngineStats& a, const EngineStats& b) {
  EXPECT_EQ(a.contacts_examined, b.contacts_examined);
  EXPECT_EQ(a.pairs_inserted, b.pairs_inserted);
  EXPECT_EQ(a.pairs_dominated, b.pairs_dominated);
  EXPECT_EQ(a.frontier_copies_avoided, b.frontier_copies_avoided);
  EXPECT_EQ(a.cdf_pairs_integrated, b.cdf_pairs_integrated);
  EXPECT_EQ(a.merge_batches, b.merge_batches);
  EXPECT_EQ(a.workspace_allocations + a.workspace_reuses,
            b.workspace_allocations + b.workspace_reuses);
}

// ASSERT_EQ on doubles is exact comparison: the contract is
// bit-identity, not tolerance.
void expect_bit_identical(const DelayCdfResult& a, const DelayCdfResult& b) {
  ASSERT_EQ(a.grid, b.grid);
  ASSERT_EQ(a.cdf_by_hops.size(), b.cdf_by_hops.size());
  for (std::size_t k = 0; k < a.cdf_by_hops.size(); ++k)
    ASSERT_EQ(a.cdf_by_hops[k], b.cdf_by_hops[k]) << "hop budget " << k + 1;
  ASSERT_EQ(a.cdf_unbounded, b.cdf_unbounded);
  EXPECT_EQ(a.fixpoint_hops, b.fixpoint_hops);
  EXPECT_EQ(a.converged, b.converged);
  EXPECT_EQ(a.denominator, b.denominator);
  for (const double eps : {0.25, 0.05, 0.01, 0.001})
    EXPECT_EQ(a.diameter(eps), b.diameter(eps)) << "eps " << eps;
  EXPECT_EQ(a.diameter_absolute(0.01), b.diameter_absolute(0.01));
  expect_equivalent_stats(a.stats, b.stats);
}

void expect_sharding_invariant(const TemporalGraph& g,
                               const DelayCdfOptions& opt) {
  const DelayCdfResult reference = compute_delay_cdf(g, opt);
  for (const ShardPolicy policy :
       {ShardPolicy::kContiguous, ShardPolicy::kBlockCyclic,
        ShardPolicy::kDegreeBalanced}) {
    for (const std::size_t shards : {1u, 2u, 3u, 7u}) {
      DelayCdfOptions sharded = opt;
      sharded.sharding.num_shards = shards;
      sharded.sharding.policy = policy;
      SCOPED_TRACE(std::string(shard_policy_name(policy)) + " x " +
                   std::to_string(shards));
      expect_bit_identical(compute_delay_cdf(g, sharded), reference);
    }
  }
}

TEST(ShardedEngine, BitIdenticalAcrossPoliciesAndShardCounts) {
  const auto g = random_graph(7, 10, 160);
  expect_sharding_invariant(g, base_options());
}

TEST(ShardedEngine, BitIdenticalOnDirectedTrace) {
  const auto g = random_graph(11, 9, 120, /*directed=*/true);
  expect_sharding_invariant(g, base_options());
}

TEST(ShardedEngine, BitIdenticalOnNegativeTimeTrace) {
  const auto g = random_graph(13, 8, 100, /*directed=*/false, /*t0=*/-500.0);
  expect_sharding_invariant(g, base_options());
}

TEST(ShardedEngine, BitIdenticalWithWindowsAndEndpointSubset) {
  const auto g = random_graph(17, 12, 180);
  auto opt = base_options();
  opt.endpoints = {1, 3, 5, 7, 9};
  opt.windows = {{5.0, 30.0}, {60.0, 95.0}};
  expect_sharding_invariant(g, opt);
}

TEST(ShardedEngine, BitIdenticalUnderDirectAccumulation) {
  const auto g = random_graph(19, 8, 90);
  auto opt = base_options();
  opt.accumulation = CdfAccumulation::kDirect;
  expect_sharding_invariant(g, opt);
}

TEST(ShardedEngine, BitIdenticalWithLevelSweepEngine) {
  const auto g = random_graph(23, 7, 80);
  auto opt = base_options();
  opt.engine = EngineMode::kLevelSweep;
  opt.accumulation = CdfAccumulation::kDirect;
  expect_sharding_invariant(g, opt);
}

TEST(ShardedEngine, BitIdenticalWithMultipleThreads) {
  // Shards run under the pool; the canonical fold must survive
  // any worker interleaving.
  const auto g = random_graph(29, 10, 150);
  auto opt = base_options();
  opt.num_threads = 3;
  expect_sharding_invariant(g, opt);
}

TEST(ShardedEngine, MoreShardsThanSourcesStillCorrect) {
  const auto g = random_graph(31, 4, 40);
  auto opt = base_options();
  const DelayCdfResult reference = compute_delay_cdf(g, opt);
  opt.sharding.num_shards = 9;  // empty shards must be harmless
  expect_bit_identical(compute_delay_cdf(g, opt), reference);
}

TEST(ShardedEngine, WorkspaceAccountingIsPerShard) {
  const auto g = random_graph(37, 8, 80);
  auto opt = base_options();
  opt.sharding.num_shards = 4;
  const auto result = compute_delay_cdf(g, opt);
  // One recycled engine workspace per shard; every remaining source is
  // a reset() of its shard's workspace.
  EXPECT_EQ(result.stats.workspace_allocations, 4u);
  EXPECT_EQ(result.stats.workspace_reuses, 8u - 4u);
}

ShardRequest sample_request() {
  ShardRequest req;
  req.shard_id = 3;
  req.num_shards = 5;
  req.policy = ShardPolicy::kBlockCyclic;
  req.engine = EngineMode::kPooled;
  req.incremental = true;
  req.max_hops = 6;
  req.max_levels = 32;
  req.grid = {0.5, 1.0, 2.5, 10.0};
  req.windows = {{-10.0, 0.0}, {5.5, 42.0}};
  req.endpoints = {0, 2, 5, 6};
  req.sources = {1, 3};
  req.transform_key = "trace:n7:c19:d0:s0000000000000000:e4045000000000000";
  return req;
}

TEST(ShardedEngine, RequestEncodeDecodeRoundTrip) {
  const ShardRequest req = sample_request();
  const auto bytes = req.encode();
  const ShardRequest back = ShardRequest::decode(bytes.data(), bytes.size());
  EXPECT_EQ(back.shard_id, req.shard_id);
  EXPECT_EQ(back.num_shards, req.num_shards);
  EXPECT_EQ(back.policy, req.policy);
  EXPECT_EQ(back.engine, req.engine);
  EXPECT_EQ(back.incremental, req.incremental);
  EXPECT_EQ(back.max_hops, req.max_hops);
  EXPECT_EQ(back.max_levels, req.max_levels);
  EXPECT_EQ(back.grid, req.grid);
  EXPECT_EQ(back.windows, req.windows);
  EXPECT_EQ(back.endpoints, req.endpoints);
  EXPECT_EQ(back.sources, req.sources);
  EXPECT_EQ(back.transform_key, req.transform_key);
}

TEST(ShardedEngine, ResultEncodeDecodeRoundTripFromRealRun) {
  const auto g = random_graph(41, 6, 60);
  auto opt = base_options();
  ShardRequest req;
  req.shard_id = 0;
  req.num_shards = 1;
  req.max_hops = opt.max_hops;
  req.max_levels = opt.max_levels;
  req.grid = opt.grid;
  req.windows = {{g.start_time(), g.end_time()}};
  for (NodeId n = 0; n < 6; ++n) req.endpoints.push_back(n);
  req.sources = {0, 1, 2, 3, 4, 5};
  req.transform_key = graph_transform_key(g);

  const ShardResult result = run_shard(g, req);
  ASSERT_EQ(result.partials.size(), 6u);

  const auto bytes = result.encode();
  const ShardResult back = ShardResult::decode(bytes.data(), bytes.size());
  EXPECT_EQ(back.shard_id, result.shard_id);
  EXPECT_EQ(back.converged, result.converged);
  EXPECT_EQ(back.fixpoint_hops, result.fixpoint_hops);
  EXPECT_EQ(back.stats.contacts_examined, result.stats.contacts_examined);
  EXPECT_EQ(back.stats.pairs_inserted, result.stats.pairs_inserted);
  EXPECT_EQ(back.stats.cdf_pairs_integrated,
            result.stats.cdf_pairs_integrated);
  ASSERT_EQ(back.partials.size(), result.partials.size());
  for (std::size_t i = 0; i < result.partials.size(); ++i) {
    EXPECT_EQ(back.partials[i].first, result.partials[i].first);
    const auto& orig = result.partials[i].second;
    const auto& copy = back.partials[i].second;
    EXPECT_EQ(copy.fixpoint_hops, orig.fixpoint_hops);
    EXPECT_EQ(copy.converged, orig.converged);
    ASSERT_EQ(copy.by_hops.size(), orig.by_hops.size());
    for (std::size_t k = 0; k < orig.by_hops.size(); ++k) {
      // Raw difference-array lanes: the bit-exactness the canonical
      // fold depends on.
      ASSERT_EQ(copy.by_hops[k].const_diff(), orig.by_hops[k].const_diff());
      ASSERT_EQ(copy.by_hops[k].slope_diff(), orig.by_hops[k].slope_diff());
      ASSERT_EQ(copy.by_hops[k].denominator(), orig.by_hops[k].denominator());
    }
    ASSERT_EQ(copy.unbounded.const_diff(), orig.unbounded.const_diff());
    ASSERT_EQ(copy.unbounded.slope_diff(), orig.unbounded.slope_diff());
    ASSERT_EQ(copy.unbounded.denominator(), orig.unbounded.denominator());
  }
}

TEST(ShardedEngine, RequestDecodeRejectsEveryTruncation) {
  const auto bytes = sample_request().encode();
  for (std::size_t len = 0; len < bytes.size(); ++len)
    EXPECT_THROW(ShardRequest::decode(bytes.data(), len), std::runtime_error)
        << "prefix length " << len;
  EXPECT_NO_THROW(ShardRequest::decode(bytes.data(), bytes.size()));
}

TEST(ShardedEngine, ResultDecodeRejectsEveryTruncation) {
  const auto g = random_graph(43, 4, 30);
  ShardRequest req;
  req.max_hops = 2;
  req.grid = {1.0, 10.0};
  req.windows = {{g.start_time(), g.end_time()}};
  for (NodeId n = 0; n < 4; ++n) req.endpoints.push_back(n);
  req.sources = {0, 1, 2, 3};
  req.transform_key = graph_transform_key(g);
  const auto bytes = run_shard(g, req).encode();
  for (std::size_t len = 0; len < bytes.size(); ++len)
    EXPECT_THROW(ShardResult::decode(bytes.data(), len), std::runtime_error)
        << "prefix length " << len;
  EXPECT_NO_THROW(ShardResult::decode(bytes.data(), bytes.size()));
}

TEST(ShardedEngine, DecodeRejectsTrailingBytesBadMagicAndBadVersion) {
  auto bytes = sample_request().encode();

  auto trailing = bytes;
  trailing.push_back(0);
  EXPECT_THROW(ShardRequest::decode(trailing.data(), trailing.size()),
               std::runtime_error);

  auto bad_magic = bytes;
  bad_magic[0] ^= 0xFF;
  EXPECT_THROW(ShardRequest::decode(bad_magic.data(), bad_magic.size()),
               std::runtime_error);

  auto bad_version = bytes;
  bad_version[4] = 0xEE;  // version u16 follows the magic u32
  EXPECT_THROW(ShardRequest::decode(bad_version.data(), bad_version.size()),
               std::runtime_error);
}

TEST(ShardedEngine, RunShardValidatesRequest) {
  const auto g = random_graph(47, 5, 40);
  ShardRequest good;
  good.max_hops = 3;
  good.grid = {1.0, 10.0};
  good.windows = {{g.start_time(), g.end_time()}};
  for (NodeId n = 0; n < 5; ++n) good.endpoints.push_back(n);
  good.sources = {0, 2, 4};
  good.transform_key = graph_transform_key(g);
  EXPECT_NO_THROW(run_shard(g, good));

  auto bad_key = good;
  bad_key.transform_key = "trace:n999:c0:d0:s0:e0";
  EXPECT_THROW(run_shard(g, bad_key), std::invalid_argument);

  auto bad_endpoint = good;
  bad_endpoint.endpoints.push_back(99);
  EXPECT_THROW(run_shard(g, bad_endpoint), std::invalid_argument);

  auto bad_sources = good;
  bad_sources.sources = {2, 0};  // not ascending
  EXPECT_THROW(run_shard(g, bad_sources), std::invalid_argument);

  auto bad_source_range = good;
  bad_source_range.sources = {0, 7};  // index past endpoints.size()
  EXPECT_THROW(run_shard(g, bad_source_range), std::invalid_argument);
}

}  // namespace
}  // namespace odtn
