// Live ingestion tentpole: the epoch-versioned TemporalGraph append API,
// the push-mode StreamingTraceParser, the incremental all-pairs engine's
// bit-identity against cold recomputes, and the QueryEngine cache-key
// epoch bump.
#include "trace/live_ingest.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "core/diameter.hpp"
#include "core/incremental_engine.hpp"
#include "core/query_engine.hpp"
#include "stats/log_grid.hpp"
#include "trace/generators.hpp"
#include "trace/snapshot.hpp"
#include "trace/trace_io.hpp"
#include "util/time_format.hpp"

namespace odtn {
namespace {

TemporalGraph sample_graph(unsigned seed = 11, std::size_t internal = 14) {
  SyntheticTraceSpec spec;
  spec.num_internal = internal;
  spec.duration = kDay;
  spec.pair_contacts_mean = 6.0;
  spec.num_communities = 3;
  return generate_trace(spec, seed).graph;
}

std::vector<double> test_grid(const TemporalGraph& g) {
  return make_log_grid(kMinute, std::max(2 * kMinute, g.duration()), 24);
}

/// Bitwise equality over everything a client can observe (counters
/// excluded: an incremental epoch examines fewer contacts by design).
void expect_bit_identical(const DelayCdfResult& a, const DelayCdfResult& b) {
  EXPECT_EQ(a.grid, b.grid);
  EXPECT_EQ(a.cdf_by_hops, b.cdf_by_hops);
  EXPECT_EQ(a.cdf_unbounded, b.cdf_unbounded);
  EXPECT_EQ(a.fixpoint_hops, b.fixpoint_hops);
  EXPECT_EQ(a.converged, b.converged);
  EXPECT_EQ(a.denominator, b.denominator);
  for (const double eps : {0.01, 0.05, 0.5})
    EXPECT_EQ(a.diameter(eps), b.diameter(eps));
}

// ---------------------------------------------------------------------
// TemporalGraph::append_contacts

TEST(AppendContacts, EpochAdvancesAndContactsLand) {
  TemporalGraph g(4, {}, false);
  EXPECT_EQ(g.epoch(), 0u);
  EXPECT_EQ(g.append_contacts(std::vector<Contact>{{0, 1, 1.0, 2.0}}), 1u);
  EXPECT_EQ(g.append_contacts(std::vector<Contact>{{1, 2, 2.0, 3.0},
                                                   {0, 3, 4.0, 5.0}}),
            2u);
  EXPECT_EQ(g.epoch(), 2u);
  EXPECT_EQ(g.num_contacts(), 3u);
  EXPECT_EQ(g.start_time(), 1.0);
  EXPECT_EQ(g.end_time(), 5.0);
  // Empty batch: no epoch tick.
  EXPECT_EQ(g.append_contacts({}), 2u);
}

TEST(AppendContacts, RejectsDisorderAndMalformedRecords) {
  TemporalGraph g(4, {{0, 1, 10.0, 12.0}}, false);
  // Sorts before the last committed contact.
  EXPECT_THROW(g.append_contacts(std::vector<Contact>{{1, 2, 5.0, 6.0}}),
               std::invalid_argument);
  // Disorder inside the batch itself.
  EXPECT_THROW(g.append_contacts(std::vector<Contact>{{0, 1, 20.0, 21.0},
                                                      {0, 1, 15.0, 16.0}}),
               std::invalid_argument);
  // Node out of range and malformed interval.
  EXPECT_THROW(g.append_contacts(std::vector<Contact>{{0, 7, 20.0, 21.0}}),
               std::invalid_argument);
  EXPECT_THROW(g.append_contacts(std::vector<Contact>{{0, 1, 21.0, 20.0}}),
               std::invalid_argument);
  // Nothing was committed by the failed batches.
  EXPECT_EQ(g.num_contacts(), 1u);
  EXPECT_EQ(g.epoch(), 0u);
}

TEST(AppendContacts, SnapshotViewsAreReadOnly) {
  const TemporalGraph g = sample_graph();
  const std::string path = testing::TempDir() + "/append_view.odtns";
  write_snapshot_file(path, g);
  TemporalGraph view = load_snapshot_file(path);
  ASSERT_TRUE(view.is_view());
  EXPECT_THROW(
      view.append_contacts(std::vector<Contact>{{0, 1, 1e9, 1e9 + 1}}),
      std::logic_error);
  std::remove(path.c_str());
}

TEST(AppendContacts, GrownIndexesMatchFreshBuild) {
  const TemporalGraph full = sample_graph(23);
  const auto contacts = full.contacts();
  for (const bool warm : {false, true}) {
    TemporalGraph grown(full.num_nodes(), {}, full.directed());
    // Warm path: indexes exist before the appends and must grow in
    // place; cold path builds them lazily at the end.
    if (warm) (void)grown.neighbor_offsets();
    const std::size_t step = contacts.size() / 5 + 1;
    for (std::size_t at = 0; at < contacts.size(); at += step)
      grown.append_contacts(
          contacts.subspan(at, std::min(step, contacts.size() - at)));
    ASSERT_EQ(grown.num_contacts(), full.num_contacts());
    ASSERT_TRUE(std::equal(grown.contacts().begin(), grown.contacts().end(),
                           full.contacts().begin()));
    ASSERT_TRUE(std::equal(grown.node_offsets().begin(),
                           grown.node_offsets().end(),
                           full.node_offsets().begin()));
    ASSERT_TRUE(std::equal(grown.node_contact_indices().begin(),
                           grown.node_contact_indices().end(),
                           full.node_contact_indices().begin()));
    ASSERT_TRUE(std::equal(grown.neighbor_offsets().begin(),
                           grown.neighbor_offsets().end(),
                           full.neighbor_offsets().begin()));
    const auto ga = grown.neighbor_records();
    const auto fa = full.neighbor_records();
    ASSERT_EQ(ga.size(), fa.size());
    for (std::size_t i = 0; i < ga.size(); ++i) {
      EXPECT_EQ(ga[i].begin, fa[i].begin);
      EXPECT_EQ(ga[i].end, fa[i].end);
      EXPECT_EQ(ga[i].to, fa[i].to);
    }
  }
}

// ---------------------------------------------------------------------
// StreamingTraceParser

std::string sample_trace_text() {
  std::ostringstream out;
  write_trace(out, sample_graph(31, 8));
  return out.str();
}

TEST(StreamingParser, ByteSplitsAreInvisible) {
  const std::string text = sample_trace_text();
  const auto one_shot = [&] {
    std::istringstream in(text);
    return read_trace(in);
  }();
  for (const std::size_t chunk : {std::size_t{1}, std::size_t{7},
                                  std::size_t{4096}}) {
    StreamingTraceParser parser;
    for (std::size_t at = 0; at < text.size(); at += chunk)
      parser.feed(text.data() + at, std::min(chunk, text.size() - at));
    const TemporalGraph g = parser.finish();
    EXPECT_EQ(g.num_nodes(), one_shot.num_nodes());
    EXPECT_EQ(g.directed(), one_shot.directed());
    ASSERT_TRUE(std::equal(g.contacts().begin(), g.contacts().end(),
                           one_shot.contacts().begin()));
  }
}

TEST(StreamingParser, FinalLineWithoutNewlineIsDelivered) {
  std::string text = sample_trace_text();
  ASSERT_EQ(text.back(), '\n');
  text.pop_back();
  StreamingTraceParser parser;
  parser.feed(text.data(), text.size());
  ParseReport report;
  const TemporalGraph g = parser.finish(&report);
  std::istringstream in(text + "\n");
  const TemporalGraph ref = read_trace(in);
  EXPECT_EQ(g.num_contacts(), ref.num_contacts());
}

TEST(StreamingParser, DrainKeepsRunningTotals) {
  const std::string text = sample_trace_text();
  StreamingTraceParser parser;
  parser.feed(text.data(), text.size() / 2);
  const std::size_t first = parser.drain_contacts().size();
  parser.feed(text.data() + text.size() / 2, text.size() - text.size() / 2);
  parser.flush();
  const std::size_t second = parser.drain_contacts().size();
  EXPECT_EQ(parser.pending_contacts(), 0u);
  const ParseReport report = parser.report();
  EXPECT_EQ(report.contacts, first + second);
  std::istringstream in(text);
  EXPECT_EQ(report.contacts, read_trace(in).num_contacts());
}

// ---------------------------------------------------------------------
// IncrementalAllPairsEngine vs cold recompute

DelayCdfOptions cold_options(const IncrementalCdfOptions& io) {
  DelayCdfOptions o;
  o.grid = io.grid;
  o.max_hops = io.max_hops;
  o.max_levels = io.max_levels;
  o.t_lo = io.t_lo;
  o.t_hi = io.t_hi;
  o.accumulation = CdfAccumulation::kDirect;
  return o;
}

void check_epoch_splits(const TemporalGraph& full, int epochs,
                        IncrementalCdfOptions io) {
  io.grid = test_grid(full);
  IncrementalAllPairsEngine engine(full.num_nodes(), full.directed(), io);
  const auto contacts = full.contacts();
  const std::size_t step = contacts.size() / epochs + 1;
  for (std::size_t at = 0; at < contacts.size(); at += step) {
    const std::size_t n = std::min(step, contacts.size() - at);
    engine.append(contacts.subspan(at, n));
    const TemporalGraph prefix(
        full.num_nodes(),
        std::vector<Contact>(contacts.begin(),
                             contacts.begin() + static_cast<long>(at + n)),
        full.directed());
    const DelayCdfResult cold = compute_delay_cdf(prefix, cold_options(io));
    const DelayCdfResult live = engine.all_pairs();
    expect_bit_identical(live, cold);
    // A second call without an append must replay identically (the
    // partial cache path).
    expect_bit_identical(engine.all_pairs(), cold);
  }
}

TEST(IncrementalEngine, BitIdenticalToColdAcrossEpochSplits) {
  const TemporalGraph full = sample_graph(41);
  for (const int epochs : {1, 3, 7}) {
    IncrementalCdfOptions io;
    io.max_hops = 8;
    check_epoch_splits(full, epochs, io);
  }
}

TEST(IncrementalEngine, BitIdenticalWithExplicitWindowAndTightLevels) {
  const TemporalGraph full = sample_graph(43);
  IncrementalCdfOptions io;
  io.max_hops = 6;
  io.max_levels = 3;  // forces the truncated/unconverged path too
  io.t_lo = full.start_time();
  io.t_hi = full.end_time();
  check_epoch_splits(full, 4, io);
}

TEST(IncrementalEngine, EmptyAndSingleContactDegenerates) {
  IncrementalCdfOptions io;
  io.grid = make_log_grid(kMinute, kHour, 8);
  io.max_hops = 4;
  IncrementalAllPairsEngine engine(3, false, io);

  // Zero contacts: a defined all-zero answer, not a crash.
  const DelayCdfResult empty = engine.all_pairs();
  EXPECT_EQ(empty.denominator, 0.0);
  for (const double v : empty.cdf_unbounded) EXPECT_EQ(v, 0.0);
  EXPECT_TRUE(std::isinf(-engine.watermark()));

  // One contact: matches the cold answer on the same one-contact graph.
  const std::vector<Contact> one{{0, 1, 100.0, 100.0 + kHour}};
  engine.append(one);
  EXPECT_EQ(engine.watermark(), 100.0);
  const TemporalGraph g(3, one, false);
  expect_bit_identical(engine.all_pairs(), compute_delay_cdf(g, cold_options(io)));
}

// ---------------------------------------------------------------------
// LiveIngestSession

TEST(LiveIngestSession, CommitsEpochsAndDropsBelowWatermark) {
  const TemporalGraph full = sample_graph(47, 8);
  std::ostringstream text;
  write_trace(text, full);
  const std::string feed = text.str();

  IncrementalCdfOptions io;
  io.grid = test_grid(full);
  io.max_hops = 6;
  LiveIngestSession session(io);
  const std::size_t half = feed.size() / 2;
  session.feed(feed.data(), half);
  ASSERT_TRUE(session.header_complete());
  session.commit_epoch();
  session.feed(feed.data() + half, feed.size() - half);
  session.flush();
  session.commit_epoch();

  ASSERT_NE(session.engine(), nullptr);
  EXPECT_EQ(session.stats().below_watermark, 0u);
  EXPECT_EQ(session.engine()->graph().num_contacts(), full.num_contacts());
  expect_bit_identical(session.engine()->all_pairs(),
                       compute_delay_cdf(full, cold_options(io)));

  // A record older than the committed watermark is refused and counted,
  // and later in-order traffic still lands.
  const double wm = session.engine()->watermark();
  const std::string stale = "0 1 " + std::to_string(wm - 1000.0) + " " +
                            std::to_string(wm - 900.0) + "\n";
  session.feed(stale.data(), stale.size());
  const std::string fresh = "0 1 " + std::to_string(wm + 1000.0) + " " +
                            std::to_string(wm + 1100.0) + "\n";
  session.feed(fresh.data(), fresh.size());
  session.commit_epoch();
  EXPECT_EQ(session.stats().below_watermark, 1u);
  EXPECT_EQ(session.engine()->graph().num_contacts(),
            full.num_contacts() + 1);
}

// ---------------------------------------------------------------------
// QueryEngine ingest: epoch-bumped cache keys

TEST(QueryEngineIngest, StaleCacheEntriesBecomeUnreachable) {
  const TemporalGraph full = sample_graph(53, 10);
  const auto contacts = full.contacts();
  const std::size_t half = contacts.size() / 2;

  QueryEngineOptions qo;
  qo.grid = test_grid(full);
  qo.max_hops = 6;
  QueryEngine engine(
      TemporalGraph(full.num_nodes(),
                    std::vector<Contact>(contacts.begin(),
                                         contacts.begin() +
                                             static_cast<long>(half)),
                    full.directed()),
      qo);

  // Warm the cache on the prefix graph, twice so hits are visible.
  (void)engine.all_pairs();
  const DelayCdfResult warm = engine.all_pairs();
  EXPECT_GT(warm.stats.cache_hits, 0u);
  EXPECT_EQ(warm.stats.cache_misses, 0u);

  const std::uint64_t epoch = engine.ingest(contacts.subspan(half));
  EXPECT_EQ(epoch, 1u);
  EXPECT_EQ(engine.graph().num_contacts(), full.num_contacts());

  // Every pre-ingest partial must be unreachable: the first post-ingest
  // run misses for every source and the answer matches a cold engine on
  // the full graph bit for bit.
  const DelayCdfResult after = engine.all_pairs();
  EXPECT_EQ(after.stats.cache_hits, 0u);
  EXPECT_EQ(after.stats.cache_misses, full.num_nodes());
  QueryEngine cold(TemporalGraph(full.num_nodes(), full.contacts_vector(),
                                 full.directed()),
                   qo);
  expect_bit_identical(after, cold.all_pairs());
}

}  // namespace
}  // namespace odtn
