// End-to-end integration: generate a synthetic conference data set, run
// the full diameter pipeline, and validate the paper-level conclusions
// hold on it (small diameter; random removal keeps the diameter small;
// duration-threshold removal hurts more than random removal at equal
// volume). Also validates the exact CDF against Monte-Carlo flooding on
// the same trace.
#include <gtest/gtest.h>

#include "core/diameter.hpp"
#include "sim/flooding.hpp"
#include "stats/log_grid.hpp"
#include "trace/generators.hpp"
#include "trace/transforms.hpp"
#include "util/rng.hpp"
#include "util/time_format.hpp"

namespace odtn {
namespace {

SyntheticTrace conference_trace() {
  SyntheticTraceSpec spec;
  spec.name = "mini-conference";
  spec.num_internal = 30;
  spec.duration = 2 * kDay;
  spec.granularity = 120.0;
  spec.pair_contacts_mean = 2.0;
  spec.num_communities = 4;
  spec.intra_boost = 4.0;
  spec.profile = ActivityProfile::conference();
  spec.gatherings = {200.0, 0.35, 0.06, 12.0 * kMinute, 0.8, 0.06};
  return generate_trace(spec, 2024);
}

DelayCdfOptions options_for(const TemporalGraph& g) {
  DelayCdfOptions opt;
  opt.grid = make_log_grid(2 * kMinute, 2 * kDay, 48);
  opt.max_hops = 10;
  (void)g;
  return opt;
}

TEST(Integration, ConferenceTraceHasSmallDiameter) {
  const auto trace = conference_trace();
  const auto result = compute_delay_cdf(trace.graph,
                                        options_for(trace.graph));
  const int diameter = result.diameter(0.01);
  EXPECT_GE(diameter, 1);
  EXPECT_LE(diameter, 6);  // the paper's small-world range
  EXPECT_LE(diameter, result.fixpoint_hops);
  // Flooding succeeds for most pairs within a day.
  EXPECT_GT(result.cdf_unbounded.back(), 0.5);
}

TEST(Integration, ExactCdfMatchesMonteCarloOnRealTrace) {
  const auto trace = conference_trace();
  const auto& g = trace.graph;
  auto opt = options_for(g);
  opt.max_hops = 4;
  const auto result = compute_delay_cdf(g, opt);

  Rng rng(555);
  const int samples = 4000;
  std::vector<int> hits(result.grid.size(), 0);
  for (int s = 0; s < samples; ++s) {
    const auto src = static_cast<NodeId>(rng.below(g.num_nodes()));
    auto dst = static_cast<NodeId>(rng.below(g.num_nodes() - 1));
    if (dst >= src) ++dst;
    const double t0 = rng.uniform(g.start_time(), g.end_time());
    const auto fr = flood(g, src, t0, 4);
    const double delay = fr.arrival_with_hops(dst, 4) - t0;
    for (std::size_t j = 0; j < result.grid.size(); ++j)
      if (delay <= result.grid[j]) ++hits[j];
  }
  for (std::size_t j = 0; j < result.grid.size(); ++j)
    EXPECT_NEAR(result.cdf_by_hops[3][j],
                hits[j] / static_cast<double>(samples), 0.03)
        << "x=" << format_duration(result.grid[j]);
}

TEST(Integration, RandomRemovalDegradesDelayNotDiameter) {
  const auto trace = conference_trace();
  Rng rng(77);
  const auto thinned = remove_contacts_random(trace.graph, 0.9, rng);
  const auto full = compute_delay_cdf(trace.graph, options_for(trace.graph));
  const auto sparse = compute_delay_cdf(thinned, options_for(thinned));
  // Delay performance collapses at small time scales (§6.1)...
  const std::size_t j_small = 8;  // a few minutes
  EXPECT_LT(sparse.cdf_unbounded[j_small],
            0.5 * full.cdf_unbounded[j_small] + 0.05);
  // ...but the diameter stays small.
  EXPECT_LE(sparse.diameter(0.01), 7);
}

TEST(Integration, RemovingContactsNeverAddsPaths) {
  // §6.2 methodology sanity: with the start-time window pinned to the
  // original trace span, removing contacts can only LOWER every CDF
  // (fewer paths), at every hop budget and time scale. (The diameter
  // itself is not monotone under removal -- both sides of its defining
  // ratio shrink -- which is why the paper measures it empirically.)
  const auto trace = conference_trace();
  const auto long_only =
      remove_contacts_shorter_than(trace.graph, 10 * kMinute);
  ASSERT_LT(long_only.num_contacts(), trace.graph.num_contacts() / 2);
  auto opt = options_for(trace.graph);
  opt.t_lo = trace.graph.start_time();
  opt.t_hi = trace.graph.end_time();
  const auto full = compute_delay_cdf(trace.graph, opt);
  const auto filtered = compute_delay_cdf(long_only, opt);
  for (std::size_t k = 0; k < full.cdf_by_hops.size(); ++k)
    for (std::size_t j = 0; j < full.grid.size(); ++j)
      ASSERT_LE(filtered.cdf_by_hops[k][j], full.cdf_by_hops[k][j] + 1e-12);
  for (std::size_t j = 0; j < full.grid.size(); ++j)
    ASSERT_LE(filtered.cdf_unbounded[j], full.cdf_unbounded[j] + 1e-12);
  // The filtered trace still has a small diameter.
  EXPECT_LE(filtered.diameter(0.01), 10);
}

TEST(Integration, ExternalRelaysConnectStrangers) {
  // Hong-Kong regime: internal nodes barely meet; external devices carry
  // the paths. The diameter over internal endpoints must use them.
  SyntheticTraceSpec spec;
  spec.name = "mini-hk";
  spec.num_internal = 12;
  spec.num_external = 80;
  spec.duration = 3 * kDay;
  spec.num_communities = 12;  // no social structure
  spec.intra_boost = 1.0;
  spec.pair_contacts_mean = 0.15;
  spec.external_pair_contacts_mean = 0.4;
  spec.profile = ActivityProfile::city();
  const auto trace = generate_trace(spec, 31337);

  auto opt = options_for(trace.graph);
  opt.endpoints = trace.internal_nodes();
  const auto with_ext = compute_delay_cdf(trace.graph, opt);

  const auto internal_only = keep_internal_contacts(trace.graph, 12);
  auto opt2 = options_for(internal_only);
  const auto without_ext = compute_delay_cdf(internal_only, opt2);

  EXPECT_GT(with_ext.cdf_unbounded.back(),
            without_ext.cdf_unbounded.back() + 0.1);
}

}  // namespace
}  // namespace odtn
