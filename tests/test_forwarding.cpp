#include "sim/forwarding.hpp"

#include <gtest/gtest.h>

#include <limits>

#include "sim/flooding.hpp"
#include "trace/generators.hpp"
#include "util/time_format.hpp"

namespace odtn {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

TemporalGraph chain_graph() {
  // 0-1 at [0,1], 1-2 at [2,3], 2-3 at [4,5], plus a late direct 0-3.
  return TemporalGraph(4, {{0, 1, 0.0, 1.0},
                           {1, 2, 2.0, 3.0},
                           {2, 3, 4.0, 5.0},
                           {0, 3, 100.0, 101.0}});
}

TEST(Forwarding, DirectWaitsForDirectContact) {
  const auto out = simulate_forwarding(chain_graph(), 0, 3, 0.0,
                                       ForwardingPolicy::kDirect);
  EXPECT_DOUBLE_EQ(out.delivery_time, 100.0);
  EXPECT_EQ(out.delivery_hops, 1);
  EXPECT_EQ(out.copies, 2);  // source + destination
}

TEST(Forwarding, EpidemicUsesTheRelayChain) {
  const auto out = simulate_forwarding(chain_graph(), 0, 3, 0.0,
                                       ForwardingPolicy::kEpidemic);
  EXPECT_DOUBLE_EQ(out.delivery_time, 4.0);
  EXPECT_EQ(out.delivery_hops, 3);
  EXPECT_EQ(out.copies, 4);
}

TEST(Forwarding, EpidemicMatchesFloodingOracle) {
  SyntheticTraceSpec spec;
  spec.num_internal = 15;
  spec.duration = kDay;
  spec.pair_contacts_mean = 4.0;
  const auto g = generate_trace(spec, 11).graph;
  for (double t0 : {0.0, 6 * kHour, 12 * kHour}) {
    const auto epidemic =
        simulate_forwarding(g, 0, 7, t0, ForwardingPolicy::kEpidemic);
    const auto oracle = flood(g, 0, t0);
    EXPECT_EQ(epidemic.delivery_time, oracle.best_arrival(7)) << "t0=" << t0;
  }
}

TEST(Forwarding, HopTtlTruncatesEpidemic) {
  ForwardingOptions opt;
  opt.hop_ttl = 2;
  const auto out = simulate_forwarding(chain_graph(), 0, 3, 0.0,
                                       ForwardingPolicy::kEpidemic, opt);
  // The 3-hop chain is unusable; only the late direct contact works.
  EXPECT_DOUBLE_EQ(out.delivery_time, 100.0);
}

TEST(Forwarding, TwoHopRelayUsesOneIntermediate) {
  // 0 meets 1 early; 1 meets 2 later: two-hop relay delivers via 1.
  TemporalGraph g(3, {{0, 1, 0.0, 1.0}, {1, 2, 5.0, 6.0}});
  const auto out =
      simulate_forwarding(g, 0, 2, 0.0, ForwardingPolicy::kTwoHopRelay);
  EXPECT_DOUBLE_EQ(out.delivery_time, 5.0);
  EXPECT_EQ(out.delivery_hops, 2);
}

TEST(Forwarding, TwoHopRelayCannotUseThreeHops) {
  TemporalGraph g(4, {{0, 1, 0.0, 1.0}, {1, 2, 2.0, 3.0}, {2, 3, 4.0, 5.0}});
  const auto out =
      simulate_forwarding(g, 0, 3, 0.0, ForwardingPolicy::kTwoHopRelay);
  EXPECT_EQ(out.delivery_time, kInf);
}

TEST(Forwarding, SprayAndWaitRespectsCopyBudget) {
  SyntheticTraceSpec spec;
  spec.num_internal = 25;
  spec.duration = kDay;
  spec.pair_contacts_mean = 6.0;
  const auto g = generate_trace(spec, 13).graph;
  ForwardingOptions opt;
  opt.copy_budget = 4;
  const auto out = simulate_forwarding(g, 0, 20, 0.0,
                                       ForwardingPolicy::kSprayAndWait, opt);
  // At most budget carriers plus possibly the destination.
  EXPECT_LE(out.copies, 5);
}

TEST(Forwarding, SprayBeatsDirectOnDelay) {
  SyntheticTraceSpec spec;
  spec.num_internal = 25;
  spec.duration = 2 * kDay;
  spec.pair_contacts_mean = 3.0;
  const auto g = generate_trace(spec, 17).graph;
  ForwardingOptions opt;
  opt.copy_budget = 8;
  double spray_wins = 0, trials = 0;
  for (NodeId dst = 1; dst < 10; ++dst) {
    const auto direct =
        simulate_forwarding(g, 0, dst, 0.0, ForwardingPolicy::kDirect);
    const auto spray = simulate_forwarding(
        g, 0, dst, 0.0, ForwardingPolicy::kSprayAndWait, opt);
    EXPECT_LE(spray.delivery_time, direct.delivery_time) << "dst=" << dst;
    ++trials;
    if (spray.delivery_time < direct.delivery_time) ++spray_wins;
  }
  EXPECT_GT(spray_wins / trials, 0.2);  // strictly better somewhere
}

TEST(Forwarding, UnreachableDestination) {
  TemporalGraph g(3, {{0, 1, 0.0, 1.0}});
  const auto out =
      simulate_forwarding(g, 0, 2, 0.0, ForwardingPolicy::kEpidemic);
  EXPECT_EQ(out.delivery_time, kInf);
  EXPECT_EQ(out.delivery_hops, -1);
}

TEST(Forwarding, PolicyNames) {
  EXPECT_STREQ(forwarding_policy_name(ForwardingPolicy::kDirect), "direct");
  EXPECT_STREQ(forwarding_policy_name(ForwardingPolicy::kEpidemic),
               "epidemic");
  EXPECT_STREQ(forwarding_policy_name(ForwardingPolicy::kTwoHopRelay),
               "two-hop");
  EXPECT_STREQ(forwarding_policy_name(ForwardingPolicy::kSprayAndWait),
               "spray-and-wait");
}

TEST(Forwarding, BadNodesThrow) {
  TemporalGraph g(2, {});
  EXPECT_THROW(
      simulate_forwarding(g, 0, 9, 0.0, ForwardingPolicy::kDirect),
      std::out_of_range);
}

}  // namespace
}  // namespace odtn
