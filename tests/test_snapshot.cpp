#include "trace/snapshot.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "core/diameter.hpp"
#include "stats/log_grid.hpp"

namespace odtn {
namespace {

TemporalGraph sample_graph() {
  return TemporalGraph(5, {{0, 1, 10.0, 20.0},
                           {1, 2, 15.0, 25.0},
                           {2, 3, 30.0, 40.0},
                           {3, 4, 35.0, 36.0},
                           {0, 4, 50.0, 90.0},
                           {1, 3, 55.0, 60.0}});
}

TemporalGraph decode_copy(const std::vector<std::uint8_t>& bytes) {
  return decode_snapshot(
      std::make_shared<const std::vector<std::uint8_t>>(bytes));
}

bool identical(const TemporalGraph& a, const TemporalGraph& b) {
  return a.num_nodes() == b.num_nodes() && a.directed() == b.directed() &&
         a.start_time() == b.start_time() && a.end_time() == b.end_time() &&
         std::ranges::equal(a.contacts(), b.contacts());
}

TEST(Snapshot, RoundTripsGraphAndBytes) {
  const TemporalGraph g = sample_graph();
  const std::vector<std::uint8_t> bytes = encode_snapshot(g);
  const TemporalGraph back = decode_copy(bytes);
  EXPECT_TRUE(identical(g, back));
  EXPECT_TRUE(back.is_view());
  EXPECT_FALSE(g.is_view());
  // encode is a pure function of the graph: re-encoding the decoded
  // view reproduces the file bit for bit.
  EXPECT_EQ(encode_snapshot(back), bytes);
}

TEST(Snapshot, RoundTripsDirectedGraph) {
  const TemporalGraph g(4, {{0, 1, 1.0, 2.0}, {1, 2, 3.0, 4.0}},
                        /*directed=*/true);
  const std::vector<std::uint8_t> bytes = encode_snapshot(g);
  const TemporalGraph back = decode_copy(bytes);
  EXPECT_TRUE(identical(g, back));
  EXPECT_TRUE(back.directed());
  // Directed graphs index only the observer side.
  EXPECT_EQ(back.neighbor_records().size(), back.num_contacts());
  EXPECT_EQ(encode_snapshot(back), bytes);
}

TEST(Snapshot, RoundTripsNegativeTimes) {
  // Epoch-shifted imports: all-negative timestamps must survive.
  const TemporalGraph g(3, {{0, 1, -100.0, -90.0}, {1, 2, -80.0, -50.0}});
  const TemporalGraph back = decode_copy(encode_snapshot(g));
  EXPECT_TRUE(identical(g, back));
  EXPECT_DOUBLE_EQ(back.start_time(), -100.0);
  EXPECT_DOUBLE_EQ(back.end_time(), -50.0);
}

TEST(Snapshot, RoundTripsEmptyTrace) {
  const TemporalGraph g(7, {});
  const std::vector<std::uint8_t> bytes = encode_snapshot(g);
  const TemporalGraph back = decode_copy(bytes);
  EXPECT_TRUE(identical(g, back));
  EXPECT_EQ(back.num_nodes(), 7u);
  EXPECT_EQ(back.num_contacts(), 0u);
  EXPECT_EQ(encode_snapshot(back), bytes);
}

TEST(Snapshot, ViewIsZeroCopyAndCopiesShareStorage) {
  const auto bytes =
      std::make_shared<const std::vector<std::uint8_t>>(
          encode_snapshot(sample_graph()));
  const TemporalGraph view = decode_snapshot(bytes);
  const std::uint8_t* lo = bytes->data();
  const std::uint8_t* hi = bytes->data() + bytes->size();
  const auto* contact_ptr =
      reinterpret_cast<const std::uint8_t*>(view.contacts().data());
  EXPECT_GE(contact_ptr, lo);
  EXPECT_LT(contact_ptr, hi);  // reads straight from the buffer

  const TemporalGraph copy = view;  // shares mapping AND indexes
  EXPECT_TRUE(copy.is_view());
  EXPECT_EQ(copy.contacts().data(), view.contacts().data());
  EXPECT_EQ(copy.neighbor_records().data(), view.neighbor_records().data());
}

TEST(Snapshot, ViewEngineRunsMatchOwnedGraphBitwise) {
  const TemporalGraph g = sample_graph();
  const TemporalGraph view = decode_copy(encode_snapshot(g));
  DelayCdfOptions opt;
  opt.grid = make_log_grid(1.0, 100.0, 16);
  opt.max_hops = 4;
  opt.num_threads = 1;
  const DelayCdfResult a = compute_delay_cdf(g, opt);
  const DelayCdfResult b = compute_delay_cdf(view, opt);
  EXPECT_EQ(a.cdf_by_hops, b.cdf_by_hops);
  EXPECT_EQ(a.cdf_unbounded, b.cdf_unbounded);
  EXPECT_EQ(a.denominator, b.denominator);
  EXPECT_EQ(a.fixpoint_hops, b.fixpoint_hops);
}

TEST(Snapshot, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/odtn_snapshot_test.odtns";
  const TemporalGraph g = sample_graph();
  write_snapshot_file(path, g);
  const TemporalGraph back = load_snapshot_file(path);
  EXPECT_TRUE(identical(g, back));
  EXPECT_TRUE(back.is_view());
  EXPECT_EQ(encode_snapshot(back), encode_snapshot(g));
  std::remove(path.c_str());
}

TEST(Snapshot, ZeroContactFileRoundTripServesQueries) {
  // encode -> mmap -> adopt_view with zero contacts: every index span is
  // empty but valid, and a CDF engine over the view answers with zeros
  // instead of crashing on the degenerate [0, 0] window.
  const std::string path = ::testing::TempDir() + "/odtn_snapshot_zero.odtns";
  const TemporalGraph g(5, {});
  write_snapshot_file(path, g);
  const TemporalGraph view = load_snapshot_file(path);
  EXPECT_TRUE(view.is_view());
  EXPECT_TRUE(identical(g, view));
  for (NodeId n = 0; n < 5; ++n) {
    EXPECT_TRUE(view.contacts_of(n).empty());
    EXPECT_TRUE(view.neighbors_by_end(n).empty());
  }
  EXPECT_EQ(encode_snapshot(view), encode_snapshot(g));
  DelayCdfOptions o;
  o.grid = make_log_grid(1.0, 10.0, 4);
  o.max_hops = 3;
  const DelayCdfResult r = compute_delay_cdf(view, o);
  EXPECT_EQ(r.denominator, 0.0);
  for (const double v : r.cdf_unbounded) EXPECT_EQ(v, 0.0);
  EXPECT_TRUE(r.converged);
  std::remove(path.c_str());
}

TEST(Snapshot, LoadRejectsMissingAndEmptyFiles) {
  EXPECT_THROW(load_snapshot_file("/nonexistent/path/x.odtns"), SnapshotError);
  const std::string path = ::testing::TempDir() + "/odtn_snapshot_empty";
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fclose(f);
  EXPECT_THROW(load_snapshot_file(path), SnapshotError);
  std::remove(path.c_str());
}

TEST(Snapshot, RejectsTruncationAtEveryPrefix) {
  const std::vector<std::uint8_t> bytes = encode_snapshot(sample_graph());
  for (std::size_t len = 0; len < bytes.size(); ++len)
    EXPECT_THROW((void)decode_snapshot(bytes.data(), len, nullptr),
                 SnapshotError)
        << "prefix of " << len << " bytes accepted";
}

TEST(Snapshot, RejectsTrailingBytes) {
  std::vector<std::uint8_t> bytes = encode_snapshot(sample_graph());
  bytes.push_back(0);
  EXPECT_THROW(decode_copy(bytes), SnapshotError);
}

TEST(Snapshot, RejectsBadMagicAndVersion) {
  const std::vector<std::uint8_t> good = encode_snapshot(sample_graph());
  std::vector<std::uint8_t> bad = good;
  bad[0] ^= 0xFF;  // magic, first byte
  EXPECT_THROW(decode_copy(bad), SnapshotError);
  bad = good;
  bad[4] = 0xFE;  // version
  EXPECT_THROW(decode_copy(bad), SnapshotError);
}

// Byte-patching matrix against the header fields: every lie about a
// count, flag or size must be caught, never trusted.
TEST(Snapshot, RejectsHeaderLies) {
  const std::vector<std::uint8_t> good = encode_snapshot(sample_graph());
  const auto patched = [&](std::size_t offset, std::uint64_t value) {
    std::vector<std::uint8_t> bytes = good;
    std::memcpy(bytes.data() + offset, &value, sizeof value);
    return bytes;
  };
  // Layout: magic(4) version(2) directed(1) reserved(1) num_nodes(8)
  // num_contacts(8) num_neighbors(8) start(8) end(8) total_size(8) ...
  EXPECT_THROW(decode_copy(patched(8, 1u << 20)), SnapshotError)   // nodes
      << "inflated num_nodes accepted";
  EXPECT_THROW(decode_copy(patched(16, 9999)), SnapshotError)      // contacts
      << "inflated num_contacts accepted";
  EXPECT_THROW(decode_copy(patched(24, 3)), SnapshotError)         // neighbors
      << "neighbor/contact count mismatch accepted";
  EXPECT_THROW(decode_copy(patched(48, 1)), SnapshotError)         // total
      << "lying total_size accepted";
  std::vector<std::uint8_t> bad = good;
  bad[6] = 2;  // directed flag out of {0, 1}
  EXPECT_THROW(decode_copy(bad), SnapshotError);
  bad = good;
  bad[7] = 1;  // reserved byte must be zero
  EXPECT_THROW(decode_copy(bad), SnapshotError);
}

TEST(Snapshot, RejectsCorruptedGraphInvariants) {
  const TemporalGraph g = sample_graph();
  const std::vector<std::uint8_t> good = encode_snapshot(g);
  // The contacts section starts at the first 64-byte boundary past the
  // 136-byte header.
  const std::size_t contacts_at = 192;
  std::vector<std::uint8_t> bad = good;
  // Swap the first two contacts: canonical order violated.
  std::vector<std::uint8_t> tmp(24);
  std::memcpy(tmp.data(), bad.data() + contacts_at, 24);
  std::memcpy(bad.data() + contacts_at, bad.data() + contacts_at + 24, 24);
  std::memcpy(bad.data() + contacts_at + 24, tmp.data(), 24);
  EXPECT_THROW(decode_copy(bad), SnapshotError);

  bad = good;
  const std::uint32_t out_of_range = 99;  // node id beyond num_nodes
  std::memcpy(bad.data() + contacts_at, &out_of_range, 4);
  EXPECT_THROW(decode_copy(bad), SnapshotError);

  bad = good;
  const double nan = std::numeric_limits<double>::quiet_NaN();
  std::memcpy(bad.data() + contacts_at + 8, &nan, 8);  // contact begin
  EXPECT_THROW(decode_copy(bad), SnapshotError);
}

TEST(Snapshot, RejectsMisalignedBuffer) {
  const std::vector<std::uint8_t> bytes = encode_snapshot(sample_graph());
  std::vector<std::uint8_t> shifted(bytes.size() + 1);
  std::memcpy(shifted.data() + 1, bytes.data(), bytes.size());
  EXPECT_THROW((void)decode_snapshot(shifted.data() + 1, bytes.size(), nullptr),
               SnapshotError);
}

}  // namespace
}  // namespace odtn
