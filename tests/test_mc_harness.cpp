// Seed-determinism suite for the parallel Monte-Carlo harness: the same
// (seed, n_trials) must produce bit-identical per-trial results and
// merged statistics on 1 thread, 2 threads, and hardware concurrency.
// tools/verify.sh runs this suite under the default, sanitize (ASan +
// UBSan), and thread (TSan) presets.
#include "util/mc_harness.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "stats/summary.hpp"

namespace odtn {
namespace {

/// Summaries compared through memcmp-exact doubles: "equal" here means
/// bit-identical accumulation, not approximately equal means.
void expect_bit_identical(const SummaryStats& a, const SummaryStats& b) {
  ASSERT_EQ(a.count(), b.count());
  const double av[4] = {a.mean(), a.variance(), a.min(), a.max()};
  const double bv[4] = {b.mean(), b.variance(), b.min(), b.max()};
  EXPECT_EQ(std::memcmp(av, bv, sizeof av), 0);
}

TEST(TrialRng, DependsOnlyOnSeedAndIndex) {
  Rng a = make_trial_rng(42, 7);
  Rng b = make_trial_rng(42, 7);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(TrialRng, DistinctIndicesGiveDistinctStreams) {
  Rng a = make_trial_rng(42, 0);
  Rng b = make_trial_rng(42, 1);
  Rng c = make_trial_rng(43, 0);
  // First outputs differing is the practical independence smoke check.
  EXPECT_NE(a.next_u64(), b.next_u64());
  Rng a2 = make_trial_rng(42, 0);
  EXPECT_NE(a2.next_u64(), c.next_u64());
}

TEST(TrialRng, UnlikeSplitNotOrderCoupled) {
  // split() depends on how far the parent advanced; keyed streams do
  // not. Deriving trial 5 first or last gives the same stream.
  Rng first = make_trial_rng(9, 5);
  for (std::uint64_t i = 0; i < 5; ++i) (void)make_trial_rng(9, i);
  Rng second = make_trial_rng(9, 5);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(first.next_u64(), second.next_u64());
}

TEST(RunTrials, ResultsInTrialOrder) {
  const auto results = run_trials(
      100, {123, 2},
      [](std::size_t trial, Rng&) { return trial * trial; });
  ASSERT_EQ(results.size(), 100u);
  for (std::size_t i = 0; i < results.size(); ++i)
    EXPECT_EQ(results[i], i * i);
}

TEST(RunTrials, SeedDeterminismAcrossThreadCounts) {
  const std::size_t n_trials = 500;
  const std::uint64_t seed = 0xDECAF;
  const auto trial_fn = [](std::size_t, Rng& rng) {
    // Consume a variable amount of the stream so scheduling skew is real.
    double acc = 0.0;
    const int draws = 1 + static_cast<int>(rng.below(32));
    for (int d = 0; d < draws; ++d) acc += rng.next_double();
    return acc;
  };
  const unsigned hw = std::thread::hardware_concurrency();
  const unsigned counts[] = {1u, 2u, hw == 0 ? 4u : hw};
  std::vector<std::vector<double>> runs;
  for (unsigned threads : counts)
    runs.push_back(run_trials(n_trials, {seed, threads}, trial_fn));
  for (std::size_t r = 1; r < runs.size(); ++r) {
    ASSERT_EQ(runs[r].size(), runs[0].size());
    for (std::size_t i = 0; i < n_trials; ++i)
      EXPECT_EQ(runs[r][i], runs[0][i]) << "trial " << i;
  }
  // Merged summaries (trial-order fold) are bit-identical too.
  std::vector<SummaryStats> summaries;
  for (const auto& run : runs)
    summaries.push_back(fold_trials(
        run, SummaryStats{},
        [](SummaryStats& acc, double x) { acc.add(x); }));
  for (std::size_t r = 1; r < summaries.size(); ++r)
    expect_bit_identical(summaries[0], summaries[r]);
}

TEST(RunTrials, PrefixOfLongerRunIsStable) {
  const auto trial_fn = [](std::size_t, Rng& rng) {
    return rng.next_u64();
  };
  const auto short_run = run_trials(100, {7, 2}, trial_fn);
  const auto long_run = run_trials(250, {7, 3}, trial_fn);
  for (std::size_t i = 0; i < short_run.size(); ++i)
    EXPECT_EQ(short_run[i], long_run[i]);
}

TEST(RunTrials, StatsCountTrialsAndWorkers) {
  McStats stats;
  const auto results = run_trials(
      300, {1, 3}, [](std::size_t, Rng& rng) { return rng.next_double(); },
      &stats);
  EXPECT_EQ(results.size(), 300u);
  EXPECT_EQ(stats.trials, 300u);
  EXPECT_EQ(stats.workers, 3u);
  ASSERT_EQ(stats.trials_by_worker.size(), 3u);
  EXPECT_EQ(std::accumulate(stats.trials_by_worker.begin(),
                            stats.trials_by_worker.end(), std::uint64_t{0}),
            300u);
  EXPECT_GE(stats.wall_ms, 0.0);
  EXPECT_GT(stats.worker_utilization(), 0.0);
  EXPECT_LE(stats.worker_utilization(), 1.0);
}

TEST(RunTrials, ZeroTrials) {
  McStats stats;
  const auto results = run_trials(
      0, {1, 2}, [](std::size_t, Rng&) { return 1; }, &stats);
  EXPECT_TRUE(results.empty());
  EXPECT_EQ(stats.trials, 0u);
  EXPECT_EQ(stats.trials_per_second(), 0.0);
}

TEST(RunTrials, ExceptionPropagates) {
  EXPECT_THROW(run_trials(50, {1, 2},
                          [](std::size_t trial, Rng&) -> int {
                            if (trial == 13)
                              throw std::runtime_error("trial failed");
                            return 0;
                          }),
               std::runtime_error);
}

TEST(RunTrials, SharedPoolAndLocalPoolAgree) {
  const auto trial_fn = [](std::size_t, Rng& rng) {
    return rng.next_double();
  };
  const auto shared = run_trials(200, {11, 0}, trial_fn);
  const auto local = run_trials(200, {11, 2}, trial_fn);
  EXPECT_EQ(shared, local);
}

}  // namespace
}  // namespace odtn
