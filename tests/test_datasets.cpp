// The dataset presets must land close to the Table 1 characteristics
// they stand in for. Tolerances are loose (the goal is the right regime,
// not exact counts). The two conference data sets are exercised at full
// size; this is also a smoke test that generation stays fast.
#include "trace/datasets.hpp"

#include <algorithm>

#include <gtest/gtest.h>

#include "util/time_format.hpp"

namespace odtn {
namespace {

void expect_close(double actual, double target, double rel_tol,
                  const std::string& what) {
  EXPECT_GT(actual, target * (1.0 - rel_tol)) << what;
  EXPECT_LT(actual, target * (1.0 + rel_tol)) << what;
}

TEST(Datasets, FourPresetsInTableOrder) {
  const auto all = all_datasets();
  ASSERT_EQ(all.size(), 4u);
  EXPECT_EQ(all[0].spec.name, "Infocom05");
  EXPECT_EQ(all[1].spec.name, "Infocom06");
  EXPECT_EQ(all[2].spec.name, "Hong-Kong");
  EXPECT_EQ(all[3].spec.name, "RealityMining");
}

TEST(Datasets, Infocom05MatchesTable1) {
  const auto d = dataset_infocom05();
  const auto t = d.generate();
  EXPECT_EQ(t.num_internal, 41u);
  EXPECT_LE(t.graph.end_time(), 3 * kDay + d.spec.granularity);
  expect_close(static_cast<double>(t.internal_contact_count()), 22459, 0.35,
               "Infocom05 internal contacts");
  EXPECT_GT(t.external_contact_count(), 200u);
}

TEST(Datasets, HongKongIsSparseWithExternalBackbone) {
  const auto d = dataset_hong_kong();
  const auto t = d.generate();
  EXPECT_EQ(t.num_internal, 37u);
  // Very few internal contacts but a much larger external population.
  EXPECT_LT(t.internal_contact_count(), 1200u);
  EXPECT_GT(t.external_contact_count(),
            t.internal_contact_count());
  EXPECT_EQ(t.graph.num_nodes(), 37u + 869u);
}

TEST(Datasets, RealityMiningIsLongAndSparse) {
  const auto d = dataset_reality_mining();
  const auto t = d.generate();
  EXPECT_EQ(t.num_internal, 97u);
  EXPECT_GT(t.graph.duration(), 80 * kDay);
  expect_close(static_cast<double>(t.internal_contact_count()), 33000, 0.35,
               "RealityMining internal contacts");
  // Contact rate per device per day far below the conference setting.
  const auto conference = dataset_infocom05().generate();
  EXPECT_LT(t.internal_contact_rate(kDay, false),
            0.25 * conference.internal_contact_rate(kDay, false));
}

TEST(Datasets, Infocom06IsTheLargest) {
  const auto d = dataset_infocom06();
  const auto t = d.generate();
  EXPECT_EQ(t.num_internal, 78u);
  expect_close(static_cast<double>(t.internal_contact_count()), 82000, 0.35,
               "Infocom06 internal contacts");
}

TEST(Datasets, PaperRowsCarryNotesForReconstructedCells) {
  for (const auto& d : all_datasets()) {
    EXPECT_FALSE(d.paper.name.empty());
    EXPECT_FALSE(d.paper.note.empty());  // every row documents its caveats
    EXPECT_GT(d.paper.devices, 0u);
  }
}

TEST(Datasets, GenerationIsDeterministicPerPreset) {
  const auto a = dataset_hong_kong().generate();
  const auto b = dataset_hong_kong().generate();
  EXPECT_TRUE(std::ranges::equal(a.graph.contacts(), b.graph.contacts()));
}

}  // namespace
}  // namespace odtn
