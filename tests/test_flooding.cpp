#include "sim/flooding.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <stdexcept>

#include "core/path_pair.hpp"

namespace odtn {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

TEST(Flooding, SourceStartsWithMessage) {
  TemporalGraph g(2, {{0, 1, 5.0, 6.0}});
  const auto r = flood(g, 0, 3.0);
  EXPECT_DOUBLE_EQ(r.arrival[0][0], 3.0);
  EXPECT_EQ(r.arrival[0][1], kInf);
}

TEST(Flooding, DirectContactDelivery) {
  TemporalGraph g(2, {{0, 1, 5.0, 8.0}});
  // Created before the contact: delivered at its begin.
  EXPECT_DOUBLE_EQ(flood(g, 0, 3.0).best_arrival(1), 5.0);
  // Created during the contact: delivered immediately.
  EXPECT_DOUBLE_EQ(flood(g, 0, 6.0).best_arrival(1), 6.0);
  // Created after the contact: never delivered.
  EXPECT_EQ(flood(g, 0, 9.0).best_arrival(1), kInf);
}

TEST(Flooding, MultiHopStoreAndForward) {
  TemporalGraph g(3, {{0, 1, 0.0, 2.0}, {1, 2, 4.0, 6.0}});
  const auto r = flood(g, 0, 1.0);
  EXPECT_DOUBLE_EQ(r.best_arrival(2), 4.0);
  EXPECT_EQ(r.optimal_hops(2), 2);
}

TEST(Flooding, ChainsThroughOverlappingContactsRegardlessOfSortOrder) {
  // The 2-3 contact sorts BEFORE the 0-1 contact but must still be used
  // after it (all overlap): requires the per-level full relaxation.
  TemporalGraph g(4, {{2, 3, 0.0, 10.0}, {1, 2, 1.0, 10.0}, {0, 1, 2.0, 10.0}});
  const auto r = flood(g, 0, 5.0);
  EXPECT_DOUBLE_EQ(r.best_arrival(3), 5.0);
  EXPECT_EQ(r.optimal_hops(3), 3);
}

TEST(Flooding, HopLimitedArrivals) {
  TemporalGraph g(3, {{0, 2, 10.0, 11.0}, {0, 1, 0.0, 1.0}, {1, 2, 2.0, 3.0}});
  const auto r = flood(g, 0, 0.0);
  EXPECT_DOUBLE_EQ(r.arrival_with_hops(2, 1), 10.0);  // direct only
  EXPECT_DOUBLE_EQ(r.arrival_with_hops(2, 2), 2.0);   // via relay
  EXPECT_DOUBLE_EQ(r.best_arrival(2), 2.0);
  EXPECT_EQ(r.optimal_hops(2), 2);
}

TEST(Flooding, MaxHopsParameterCapsLevels) {
  TemporalGraph g(4, {{0, 1, 0.0, 1.0}, {1, 2, 2.0, 3.0}, {2, 3, 4.0, 5.0}});
  const auto r = flood(g, 0, 0.0, /*max_hops=*/2);
  EXPECT_EQ(r.arrival_with_hops(3, 2), kInf);
  const auto full = flood(g, 0, 0.0);
  EXPECT_DOUBLE_EQ(full.best_arrival(3), 4.0);
}

TEST(Flooding, DirectedGraphRespectsDirection) {
  TemporalGraph g(2, {{1, 0, 0.0, 1.0}}, /*directed=*/true);
  EXPECT_EQ(flood(g, 0, 0.0).best_arrival(1), kInf);
  EXPECT_DOUBLE_EQ(flood(g, 1, 0.0).best_arrival(0), 0.0);
}

TEST(Flooding, ReconstructValidatesEquation2) {
  TemporalGraph g(5, {{0, 1, 0.0, 2.0},
                      {1, 2, 1.0, 5.0},
                      {2, 3, 4.0, 9.0},
                      {3, 4, 8.0, 12.0},
                      {0, 4, 20.0, 21.0}});
  const auto r = flood(g, 0, 0.0);
  const auto seq_idx = r.reconstruct(g, 4, 64);
  ASSERT_FALSE(seq_idx.empty());
  std::vector<Contact> seq;
  for (std::size_t i : seq_idx) seq.push_back(g.contacts()[i]);
  EXPECT_TRUE(is_time_respecting(seq));
  // The sequence starts at the source and ends at the destination.
  EXPECT_TRUE(seq.front().u == 0 || seq.front().v == 0);
  EXPECT_TRUE(seq.back().u == 4 || seq.back().v == 4);
  // The reconstructed route realizes the flooding arrival: its earliest
  // arrival equals best_arrival.
  const PathPair p = summarize_sequence(seq);
  EXPECT_DOUBLE_EQ(std::max(r.start_time, p.ea), r.best_arrival(4));
}

TEST(Flooding, ReconstructEmptyForUnreachableAndSource) {
  TemporalGraph g(3, {{0, 1, 0.0, 1.0}});
  const auto r = flood(g, 0, 0.0);
  EXPECT_TRUE(r.reconstruct(g, 2, 64).empty());  // unreachable
  EXPECT_TRUE(r.reconstruct(g, 0, 64).empty());  // source itself
}

TEST(Flooding, OptimalHopsUnreachableIsMinusOne) {
  TemporalGraph g(3, {{0, 1, 0.0, 1.0}});
  EXPECT_EQ(flood(g, 0, 0.0).optimal_hops(2), -1);
}

// Regression: a -1 parent on a node recorded as reached used to be
// guarded only by an assert; in release builds it was cast to a huge
// std::size_t and indexed graph.contacts() out of bounds.
TEST(Flooding, ReconstructThrowsOnInconsistentParentData) {
  TemporalGraph g(3, {{0, 1, 0.0, 1.0}, {1, 2, 2.0, 3.0}});
  auto r = flood(g, 0, 0.0);
  ASSERT_GE(r.parent.size(), 3u);
  // Corrupt the tables: node 2 claims an arrival but loses its parent.
  r.parent[2][2] = -1;
  EXPECT_THROW(r.reconstruct(g, 2, 64), std::logic_error);
  // And a parent pointing past the contact list must not be chased.
  r.parent[2][2] = static_cast<std::int64_t>(g.num_contacts()) + 7;
  EXPECT_THROW(r.reconstruct(g, 2, 64), std::logic_error);
}

}  // namespace
}  // namespace odtn
