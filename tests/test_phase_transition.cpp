// Monte-Carlo validation of the phase transition (§3.2) and of the
// Figure 3 hop-number predictions. Kept at moderate sizes so the test
// stays fast; the benches run the full-size experiments.
#include "random/phase_transition.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "random/theory.hpp"

namespace odtn {
namespace {

TEST(PhaseTransition, SuperVsSubCriticalShortContacts) {
  Rng rng(1001);
  const std::size_t n = 400;
  const double lambda = 0.5;
  const double gamma = gamma_star_short(lambda);       // 1/3
  const double tau_c = delay_constant_short(lambda);   // ~2.47
  const double p_sub = estimate_path_probability(n, lambda, 0.4 * tau_c,
                                                 gamma, ContactCase::kShort,
                                                 200, rng);
  const double p_super = estimate_path_probability(n, lambda, 3.0 * tau_c,
                                                   gamma, ContactCase::kShort,
                                                   200, rng);
  EXPECT_LT(p_sub, 0.15);
  EXPECT_GT(p_super, 0.85);
}

TEST(PhaseTransition, SuperVsSubCriticalLongContacts) {
  Rng rng(1002);
  const std::size_t n = 400;
  const double lambda = 0.5;
  const double gamma = gamma_star_long(lambda);       // 1
  const double tau_c = delay_constant_long(lambda);   // ~1.44
  const double p_sub = estimate_path_probability(n, lambda, 0.4 * tau_c,
                                                 gamma, ContactCase::kLong,
                                                 200, rng);
  const double p_super = estimate_path_probability(n, lambda, 3.0 * tau_c,
                                                   gamma, ContactCase::kLong,
                                                   200, rng);
  EXPECT_LT(p_sub, 0.15);
  EXPECT_GT(p_super, 0.85);
}

TEST(PhaseTransition, DenseLongContactsConnectAlmostInstantly) {
  // lambda > 1: paths exist within tau*ln(N) slots even for tiny tau
  // (the giant-component regime of §3.2.3).
  Rng rng(1003);
  const double p = estimate_path_probability(500, 2.0, 0.35, 8.0,
                                             ContactCase::kLong, 150, rng);
  EXPECT_GT(p, 0.8);
}

TEST(MeasureDelayOptimal, ReachesAndRecords) {
  Rng rng(1004);
  const auto stats = measure_delay_optimal(200, 1.0, ContactCase::kShort, 50,
                                           10000, rng);
  EXPECT_EQ(stats.unreached, 0u);
  EXPECT_EQ(stats.delay_over_log_n.count(), 50u);
  EXPECT_GT(stats.delay_over_log_n.mean(), 0.0);
  EXPECT_GT(stats.hops_over_log_n.mean(), 0.0);
  // Hops on the delay-optimal path never exceed its delay in slots
  // (short contacts: one hop per slot).
  EXPECT_LE(stats.hops_over_log_n.mean(),
            stats.delay_over_log_n.mean() + 1e-9);
}

TEST(MeasureDelayOptimal, HopNumberTracksFigure3Prediction) {
  // At lambda = 0.5, short contacts: k/ln N ~ 0.82 for large N. At
  // N = 1000 finite-size effects remain, so use a generous band.
  Rng rng(1005);
  const double lambda = 0.5;
  const auto stats = measure_delay_optimal(1000, lambda, ContactCase::kShort,
                                           60, 20000, rng);
  ASSERT_EQ(stats.unreached, 0u);
  const double predicted = hop_constant_short(lambda);  // ~0.822
  EXPECT_NEAR(stats.hops_over_log_n.mean(), predicted, 0.45);
  // And the delay tracks tau* = 2.47 within a similar band.
  EXPECT_NEAR(stats.delay_over_log_n.mean(), delay_constant_short(lambda),
              1.0);
}

TEST(MeasureDelayOptimal, UnreachedCountedWhenCapTooSmall) {
  Rng rng(1006);
  // Essentially no contacts: with a tiny slot cap nothing arrives.
  const auto stats = measure_delay_optimal(100, 0.01, ContactCase::kShort, 10,
                                           3, rng);
  EXPECT_EQ(stats.unreached, 10u);
  EXPECT_EQ(stats.delay_over_log_n.count(), 0u);
}

}  // namespace
}  // namespace odtn
