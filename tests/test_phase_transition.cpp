// Monte-Carlo validation of the phase transition (§3.2) and of the
// Figure 3 hop-number predictions. Kept at moderate sizes so the test
// stays fast; the benches run the full-size experiments.
//
// All experiments run through the deterministic parallel harness, so
// this suite also pins its invariants: per-trial outcomes depend only
// on (seed, trial_index) -- never on thread count, trial order, or how
// many trials run in total.
#include "random/phase_transition.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <thread>

#include "random/theory.hpp"

namespace odtn {
namespace {

TEST(PhaseTransition, SuperVsSubCriticalShortContacts) {
  const std::size_t n = 400;
  const double lambda = 0.5;
  const double gamma = gamma_star_short(lambda);       // 1/3
  const double tau_c = delay_constant_short(lambda);   // ~2.47
  const double p_sub = estimate_path_probability(n, lambda, 0.4 * tau_c,
                                                 gamma, ContactCase::kShort,
                                                 200, /*seed=*/1001);
  const double p_super = estimate_path_probability(n, lambda, 3.0 * tau_c,
                                                   gamma, ContactCase::kShort,
                                                   200, /*seed=*/1001);
  EXPECT_LT(p_sub, 0.15);
  EXPECT_GT(p_super, 0.85);
}

TEST(PhaseTransition, SuperVsSubCriticalLongContacts) {
  const std::size_t n = 400;
  const double lambda = 0.5;
  const double gamma = gamma_star_long(lambda);       // 1
  const double tau_c = delay_constant_long(lambda);   // ~1.44
  const double p_sub = estimate_path_probability(n, lambda, 0.4 * tau_c,
                                                 gamma, ContactCase::kLong,
                                                 200, /*seed=*/1002);
  const double p_super = estimate_path_probability(n, lambda, 3.0 * tau_c,
                                                   gamma, ContactCase::kLong,
                                                   200, /*seed=*/1002);
  EXPECT_LT(p_sub, 0.15);
  EXPECT_GT(p_super, 0.85);
}

TEST(PhaseTransition, DenseLongContactsConnectAlmostInstantly) {
  // lambda > 1: paths exist within tau*ln(N) slots even for tiny tau
  // (the giant-component regime of §3.2.3).
  const double p = estimate_path_probability(500, 2.0, 0.35, 8.0,
                                             ContactCase::kLong, 150,
                                             /*seed=*/1003);
  EXPECT_GT(p, 0.8);
}

TEST(PhaseTransition, ThreadCountDoesNotChangeOutcomes) {
  const double tau_c = delay_constant_short(0.5);
  const unsigned hw = std::thread::hardware_concurrency();
  const McOptions one_thread{2024, 1};
  const McOptions two_threads{2024, 2};
  const McOptions many_threads{2024, hw == 0 ? 4 : hw};
  const auto a = probe_path_probability(300, 0.5, tau_c, 1.0 / 3.0,
                                        ContactCase::kShort, 120, one_thread);
  const auto b = probe_path_probability(300, 0.5, tau_c, 1.0 / 3.0,
                                        ContactCase::kShort, 120, two_threads);
  const auto c = probe_path_probability(300, 0.5, tau_c, 1.0 / 3.0,
                                        ContactCase::kShort, 120,
                                        many_threads);
  EXPECT_EQ(a.outcomes, b.outcomes);
  EXPECT_EQ(a.outcomes, c.outcomes);
  EXPECT_EQ(a.successes, c.successes);
  EXPECT_EQ(a.probability, c.probability);
}

TEST(PhaseTransition, TrialSubsetsAreStable) {
  // Regression for the shared-Rng trial loop: running 100 trials and
  // then "100 more" must agree with 200 straight -- the first 100
  // outcomes of the longer run are exactly the shorter run.
  const double tau_c = delay_constant_short(0.5);
  const auto short_run =
      probe_path_probability(300, 0.5, tau_c, 1.0 / 3.0, ContactCase::kShort,
                             100, {7777, 2});
  const auto long_run =
      probe_path_probability(300, 0.5, tau_c, 1.0 / 3.0, ContactCase::kShort,
                             200, {7777, 3});
  ASSERT_EQ(short_run.outcomes.size(), 100u);
  ASSERT_EQ(long_run.outcomes.size(), 200u);
  for (std::size_t i = 0; i < 100; ++i)
    EXPECT_EQ(short_run.outcomes[i], long_run.outcomes[i]) << "trial " << i;
}

TEST(MeasureDelayOptimal, ReachesAndRecords) {
  const auto stats = measure_delay_optimal(200, 1.0, ContactCase::kShort, 50,
                                           10000, {1004, 0});
  EXPECT_EQ(stats.unreached, 0u);
  EXPECT_EQ(stats.delay_over_log_n.count(), 50u);
  EXPECT_EQ(stats.trials.size(), 50u);
  EXPECT_EQ(stats.mc.trials, 50u);
  EXPECT_GT(stats.delay_over_log_n.mean(), 0.0);
  EXPECT_GT(stats.hops_over_log_n.mean(), 0.0);
  // Hops on the delay-optimal path never exceed its delay in slots
  // (short contacts: one hop per slot).
  EXPECT_LE(stats.hops_over_log_n.mean(),
            stats.delay_over_log_n.mean() + 1e-9);
}

TEST(MeasureDelayOptimal, HopNumberTracksFigure3Prediction) {
  // At lambda = 0.5, short contacts: k/ln N ~ 0.82 for large N. At
  // N = 1000 finite-size effects remain, so use a generous band.
  const double lambda = 0.5;
  const auto stats = measure_delay_optimal(1000, lambda, ContactCase::kShort,
                                           60, 20000, {1005, 0});
  ASSERT_EQ(stats.unreached, 0u);
  const double predicted = hop_constant_short(lambda);  // ~0.822
  EXPECT_NEAR(stats.hops_over_log_n.mean(), predicted, 0.45);
  // And the delay tracks tau* = 2.47 within a similar band.
  EXPECT_NEAR(stats.delay_over_log_n.mean(), delay_constant_short(lambda),
              1.0);
}

TEST(MeasureDelayOptimal, UnreachedCountedWhenCapTooSmall) {
  // Essentially no contacts: with a tiny slot cap nothing arrives.
  const auto stats = measure_delay_optimal(100, 0.01, ContactCase::kShort, 10,
                                           3, {1006, 0});
  EXPECT_EQ(stats.unreached, 10u);
  EXPECT_EQ(stats.delay_over_log_n.count(), 0u);
}

TEST(MeasureDelayOptimal, MergedSummariesThreadCountInvariant) {
  const auto one = measure_delay_optimal(250, 1.0, ContactCase::kShort, 40,
                                         5000, {31337, 1});
  const auto many = measure_delay_optimal(250, 1.0, ContactCase::kShort, 40,
                                          5000, {31337, 4});
  ASSERT_EQ(one.trials.size(), many.trials.size());
  for (std::size_t i = 0; i < one.trials.size(); ++i) {
    EXPECT_EQ(one.trials[i].reached, many.trials[i].reached);
    EXPECT_EQ(one.trials[i].delay_over_log_n, many.trials[i].delay_over_log_n);
    EXPECT_EQ(one.trials[i].hops_over_log_n, many.trials[i].hops_over_log_n);
  }
  // The fold happens in trial order, so the merged Welford summaries
  // are bit-identical, not merely close.
  EXPECT_EQ(one.unreached, many.unreached);
  EXPECT_EQ(one.delay_over_log_n.count(), many.delay_over_log_n.count());
  EXPECT_EQ(one.delay_over_log_n.mean(), many.delay_over_log_n.mean());
  EXPECT_EQ(one.delay_over_log_n.variance(),
            many.delay_over_log_n.variance());
  EXPECT_EQ(one.hops_over_log_n.mean(), many.hops_over_log_n.mean());
  EXPECT_EQ(one.hops_over_log_n.variance(),
            many.hops_over_log_n.variance());
}

}  // namespace
}  // namespace odtn
