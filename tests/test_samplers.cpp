#include "util/samplers.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "stats/summary.hpp"
#include "util/rng.hpp"

namespace odtn {
namespace {

class SamplersSeeded : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SamplersSeeded, ExponentialMeanMatchesRate) {
  Rng rng(GetParam());
  for (double rate : {0.1, 1.0, 5.0}) {
    SummaryStats stats;
    for (int i = 0; i < 20000; ++i) stats.add(sample_exponential(rng, rate));
    EXPECT_NEAR(stats.mean(), 1.0 / rate, 4.0 * stats.stderr_mean())
        << "rate=" << rate;
    EXPECT_GE(stats.min(), 0.0);
  }
}

TEST_P(SamplersSeeded, GeometricTrialsMean) {
  Rng rng(GetParam());
  for (double p : {0.05, 0.3, 0.9}) {
    SummaryStats stats;
    for (int i = 0; i < 20000; ++i)
      stats.add(static_cast<double>(sample_geometric_trials(rng, p)));
    EXPECT_NEAR(stats.mean(), 1.0 / p, 5.0 * stats.stderr_mean())
        << "p=" << p;
    EXPECT_GE(stats.min(), 1.0);
  }
}

TEST_P(SamplersSeeded, GeometricFailuresSupportAndMean) {
  Rng rng(GetParam());
  SummaryStats stats;
  for (int i = 0; i < 20000; ++i)
    stats.add(static_cast<double>(sample_geometric_failures(rng, 0.25)));
  EXPECT_GE(stats.min(), 0.0);
  EXPECT_NEAR(stats.mean(), 3.0, 5.0 * stats.stderr_mean());  // (1-p)/p
}

TEST_P(SamplersSeeded, GeometricCertainSuccess) {
  Rng rng(GetParam());
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(sample_geometric_failures(rng, 1.0), 0u);
    EXPECT_EQ(sample_geometric_trials(rng, 1.0), 1u);
  }
}

TEST_P(SamplersSeeded, ParetoSupport) {
  Rng rng(GetParam());
  for (int i = 0; i < 10000; ++i)
    ASSERT_GE(sample_pareto(rng, 2.0, 1.5), 2.0);
}

TEST_P(SamplersSeeded, ParetoTailIndex) {
  // P[X > 2*xmin] = 2^-alpha for a Pareto.
  Rng rng(GetParam());
  const double alpha = 1.5;
  int tail = 0;
  const int n = 40000;
  for (int i = 0; i < n; ++i)
    if (sample_pareto(rng, 1.0, alpha) > 2.0) ++tail;
  EXPECT_NEAR(tail / static_cast<double>(n), std::pow(2.0, -alpha), 0.015);
}

TEST_P(SamplersSeeded, BoundedParetoStaysInRange) {
  Rng rng(GetParam());
  for (int i = 0; i < 10000; ++i) {
    const double x = sample_bounded_pareto(rng, 120.0, 14400.0, 1.1);
    ASSERT_GE(x, 120.0);
    ASSERT_LE(x, 14400.0);
  }
}

TEST_P(SamplersSeeded, NormalMoments) {
  Rng rng(GetParam());
  SummaryStats stats;
  for (int i = 0; i < 40000; ++i) stats.add(sample_normal(rng, 3.0, 2.0));
  EXPECT_NEAR(stats.mean(), 3.0, 5.0 * stats.stderr_mean());
  EXPECT_NEAR(stats.stddev(), 2.0, 0.1);
}

TEST_P(SamplersSeeded, LognormalMedian) {
  Rng rng(GetParam());
  int below = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i)
    if (sample_lognormal(rng, 1.0, 0.7) < std::exp(1.0)) ++below;
  EXPECT_NEAR(below / static_cast<double>(n), 0.5, 0.02);
}

TEST_P(SamplersSeeded, PoissonSmallMean) {
  Rng rng(GetParam());
  SummaryStats stats;
  for (int i = 0; i < 30000; ++i)
    stats.add(static_cast<double>(sample_poisson(rng, 3.7)));
  EXPECT_NEAR(stats.mean(), 3.7, 5.0 * stats.stderr_mean());
  EXPECT_NEAR(stats.variance(), 3.7, 0.3);
}

TEST_P(SamplersSeeded, PoissonLargeMeanUsesNormalApprox) {
  Rng rng(GetParam());
  SummaryStats stats;
  for (int i = 0; i < 20000; ++i)
    stats.add(static_cast<double>(sample_poisson(rng, 1000.0)));
  EXPECT_NEAR(stats.mean(), 1000.0, 5.0 * stats.stderr_mean());
  EXPECT_NEAR(stats.stddev(), std::sqrt(1000.0), 2.0);
}

TEST(Samplers, PoissonZeroMean) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(sample_poisson(rng, 0.0), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SamplersSeeded,
                         ::testing::Values(1u, 424242u, 0xDEADBEEFu));

}  // namespace
}  // namespace odtn
