// Tests of the source-set partitioning layer (core/partition.hpp).
#include "core/partition.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "util/rng.hpp"

namespace odtn {
namespace {

TemporalGraph test_graph(std::size_t nodes, int contacts, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Contact> cs;
  for (int i = 0; i < contacts; ++i) {
    const auto u = static_cast<NodeId>(rng.below(nodes));
    auto v = static_cast<NodeId>(rng.below(nodes - 1));
    if (v >= u) ++v;
    const double b = rng.uniform(0, 100);
    cs.push_back({u, v, b, b + rng.uniform(0, 5)});
  }
  return TemporalGraph(nodes, std::move(cs));
}

std::vector<NodeId> all_nodes(std::size_t n) {
  std::vector<NodeId> out(n);
  std::iota(out.begin(), out.end(), NodeId{0});
  return out;
}

void expect_exact_cover(const SourcePartition& part, std::size_t count) {
  ASSERT_EQ(part.shard_of.size(), count);
  ASSERT_EQ(part.members.size(), part.num_shards);
  std::vector<int> seen(count, 0);
  for (std::size_t s = 0; s < part.num_shards; ++s) {
    for (std::size_t i = 0; i < part.members[s].size(); ++i) {
      const std::uint32_t idx = part.members[s][i];
      ASSERT_LT(idx, count);
      EXPECT_EQ(part.shard_of[idx], s);
      ++seen[idx];
      if (i > 0) {  // members must ascend (canonical-merge precondition)
        EXPECT_LT(part.members[s][i - 1], idx);
      }
    }
  }
  for (std::size_t i = 0; i < count; ++i) EXPECT_EQ(seen[i], 1);
}

TEST(Partition, ContiguousSplitsIntoBalancedRanges) {
  const auto g = test_graph(10, 60, 1);
  const auto part = partition_sources(g, all_nodes(10), 3,
                                      ShardPolicy::kContiguous);
  expect_exact_cover(part, 10);
  EXPECT_EQ(part.members[0].size(), 4u);  // 10 = 4 + 3 + 3
  EXPECT_EQ(part.members[1].size(), 3u);
  EXPECT_EQ(part.members[2].size(), 3u);
  // Each shard owns one contiguous range.
  for (const auto& members : part.members) {
    for (std::size_t i = 1; i < members.size(); ++i)
      EXPECT_EQ(members[i], members[i - 1] + 1);
  }
}

TEST(Partition, BlockCyclicDealsFixedBlocks) {
  const auto g = test_graph(8, 40, 2);
  const auto part = partition_sources(g, all_nodes(8), 2,
                                      ShardPolicy::kBlockCyclic,
                                      /*block_size=*/2);
  expect_exact_cover(part, 8);
  const std::vector<std::uint32_t> expected{0, 0, 1, 1, 0, 0, 1, 1};
  EXPECT_EQ(part.shard_of, expected);
}

TEST(Partition, DegreeBalancedEvensContactLoad) {
  // Node 0 carries half the contacts; LPT must not also give its shard
  // the next-heaviest source.
  std::vector<Contact> cs;
  for (int i = 0; i < 40; ++i) {
    const double b = 2.0 * i;
    cs.push_back({0, static_cast<NodeId>(1 + i % 5), b, b + 1.0});
  }
  for (int i = 0; i < 8; ++i) {
    const double b = 3.0 * i;
    cs.push_back({6, 7, b, b + 1.0});
  }
  TemporalGraph g(8, std::move(cs));
  const auto part = partition_sources(g, all_nodes(8), 2,
                                      ShardPolicy::kDegreeBalanced);
  expect_exact_cover(part, 8);
  // LPT places the two heaviest sources on different shards, and the
  // heaviest source's shard compensates by taking fewer sources overall
  // (a contiguous split would hand shard 0 both node 0 and half the
  // rest).
  EXPECT_NE(part.shard_of[0], part.shard_of[1]);
  const auto heavy = part.shard_of[0];
  EXPECT_LT(part.members[heavy].size(), part.members[1 - heavy].size());
  // Deterministic: same inputs, same assignment.
  const auto again = partition_sources(g, all_nodes(8), 2,
                                       ShardPolicy::kDegreeBalanced);
  EXPECT_EQ(part.shard_of, again.shard_of);
}

TEST(Partition, EveryPolicyCoversEveryShardCount) {
  const auto g = test_graph(9, 50, 3);
  for (const ShardPolicy policy :
       {ShardPolicy::kContiguous, ShardPolicy::kBlockCyclic,
        ShardPolicy::kDegreeBalanced}) {
    for (const std::size_t shards : {1u, 2u, 3u, 7u, 16u}) {
      const auto part = partition_sources(g, all_nodes(9), shards, policy);
      EXPECT_EQ(part.num_shards, shards);
      expect_exact_cover(part, 9);
    }
  }
}

TEST(Partition, EndpointSubsetPartitionsPositionsNotIds) {
  const auto g = test_graph(12, 40, 4);
  const std::vector<NodeId> endpoints{2, 5, 7, 11};
  const auto part = partition_sources(g, endpoints, 2,
                                      ShardPolicy::kContiguous);
  expect_exact_cover(part, endpoints.size());
}

TEST(Partition, InvalidArgumentsThrow) {
  const auto g = test_graph(4, 10, 5);
  EXPECT_THROW(partition_sources(g, all_nodes(4), 0,
                                 ShardPolicy::kContiguous),
               std::invalid_argument);
  EXPECT_THROW(partition_sources(g, all_nodes(4), 2,
                                 ShardPolicy::kBlockCyclic, 0),
               std::invalid_argument);
  EXPECT_THROW(partition_sources(g, {NodeId{9}}, 2,
                                 ShardPolicy::kContiguous),
               std::invalid_argument);
}

TEST(Partition, PolicyNamesRoundTrip) {
  for (const ShardPolicy policy :
       {ShardPolicy::kContiguous, ShardPolicy::kBlockCyclic,
        ShardPolicy::kDegreeBalanced}) {
    const auto parsed = parse_shard_policy(shard_policy_name(policy));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, policy);
  }
  EXPECT_FALSE(parse_shard_policy("round-robin").has_value());
  EXPECT_FALSE(parse_shard_policy("").has_value());
}

}  // namespace
}  // namespace odtn
