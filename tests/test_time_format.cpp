#include "util/time_format.hpp"

#include <gtest/gtest.h>

#include <limits>

namespace odtn {
namespace {

TEST(FormatDuration, Seconds) {
  EXPECT_EQ(format_duration(0.0), "0 s");
  EXPECT_EQ(format_duration(30.0), "30 s");
  EXPECT_EQ(format_duration(59.0), "59 s");
}

TEST(FormatDuration, Minutes) {
  EXPECT_EQ(format_duration(2 * kMinute), "2 min");
  EXPECT_EQ(format_duration(90.0), "1.5 min");
  EXPECT_EQ(format_duration(10 * kMinute), "10 min");
}

TEST(FormatDuration, HoursDaysWeeks) {
  EXPECT_EQ(format_duration(kHour), "1 h");
  EXPECT_EQ(format_duration(3 * kHour), "3 h");
  EXPECT_EQ(format_duration(kDay), "1 d");
  EXPECT_EQ(format_duration(2 * kDay), "2 d");
  EXPECT_EQ(format_duration(kWeek), "1 wk");
}

TEST(FormatDuration, Negative) {
  EXPECT_EQ(format_duration(-2 * kMinute), "-2 min");
}

TEST(FormatDuration, NonFinite) {
  EXPECT_EQ(format_duration(std::numeric_limits<double>::infinity()), "inf");
  EXPECT_EQ(format_duration(-std::numeric_limits<double>::infinity()), "-inf");
  EXPECT_EQ(format_duration(std::numeric_limits<double>::quiet_NaN()), "nan");
}

TEST(FormatTimestamp, DayAndTimeOfDay) {
  EXPECT_EQ(format_timestamp(0.0), "0+00:00:00");
  EXPECT_EQ(format_timestamp(kDay + 3 * kHour + 4 * kMinute + 5),
            "1+03:04:05");
  EXPECT_EQ(format_timestamp(2 * kDay + 14 * kHour + 3 * kMinute + 20),
            "2+14:03:20");
}

TEST(FormatTimestamp, InfinityFallsBack) {
  EXPECT_EQ(format_timestamp(std::numeric_limits<double>::infinity()), "inf");
}

TEST(Constants, Consistency) {
  EXPECT_DOUBLE_EQ(kMinute, 60.0);
  EXPECT_DOUBLE_EQ(kHour, 60.0 * kMinute);
  EXPECT_DOUBLE_EQ(kDay, 24.0 * kHour);
  EXPECT_DOUBLE_EQ(kWeek, 7.0 * kDay);
}

}  // namespace
}  // namespace odtn
