// Every generator in the repo must produce traces that `odtn validate`
// accepts cleanly: canonical order, no overlapping duplicates, a node
// count matching the ids in use. This is the acceptance gate tying the
// generators to the hardened ingestion pipeline.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "cli/commands.hpp"
#include "trace/datasets.hpp"
#include "trace/generators.hpp"
#include "trace/trace_io.hpp"
#include "trace/wlan_generator.hpp"

namespace odtn {
namespace {

/// Writes `graph` to a temp file and runs `odtn validate` on it in both
/// lenient and strict modes; generator output must be defect-free.
void expect_validates(const TemporalGraph& graph, const std::string& name) {
  const std::string path = ::testing::TempDir() + "/odtn_validate_" + name +
                           ".trace";
  write_trace_file(path, graph);
  EXPECT_EQ(cli::run_cli({"validate", path}), 0) << name;
  EXPECT_EQ(cli::run_cli({"validate", path, "--strict"}), 0) << name;
  std::remove(path.c_str());
}

TEST(TraceValidate, AcceptsEveryDatasetPreset) {
  for (const DatasetPreset& preset : all_datasets()) {
    SCOPED_TRACE(preset.paper.name);
    expect_validates(preset.generate().graph, preset.paper.name);
  }
}

TEST(TraceValidate, AcceptsSyntheticGeneratorOutput) {
  SyntheticTraceSpec spec;
  spec.num_internal = 25;
  spec.num_external = 10;
  spec.duration = 3.0 * 86400.0;
  spec.pair_contacts_mean = 4.0;
  expect_validates(generate_trace(spec, 11).graph, "synthetic");
}

TEST(TraceValidate, AcceptsWlanGeneratorOutput) {
  WlanTraceSpec spec;
  spec.num_devices = 40;
  spec.num_access_points = 12;
  spec.duration = 2.0 * 86400.0;
  expect_validates(generate_wlan_trace(spec, 5).graph, "wlan");
}

TEST(TraceValidate, FlagsDefectiveTraceNonZero) {
  const std::string path = ::testing::TempDir() + "/odtn_validate_bad.trace";
  std::FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fputs("# odtn-trace v1\n# nodes 2\n0 1 0 1\n0 1 zero 1\n", f);
  std::fclose(f);
  EXPECT_EQ(cli::run_cli({"validate", path}), 1);       // lenient: skip+flag
  EXPECT_NE(cli::run_cli({"validate", path, "--strict"}), 0);
  std::remove(path.c_str());
}

TEST(TraceValidate, MissingFileFails) {
  EXPECT_NE(cli::run_cli({"validate", "/no/such/trace.txt"}), 0);
}

}  // namespace
}  // namespace odtn
