#include "trace/generators.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include <map>

#include "util/time_format.hpp"

namespace odtn {
namespace {

SyntheticTraceSpec small_spec() {
  SyntheticTraceSpec spec;
  spec.name = "test";
  spec.num_internal = 20;
  spec.duration = 2 * kDay;
  spec.granularity = 120.0;
  spec.pair_contacts_mean = 6.0;
  spec.num_communities = 4;
  spec.intra_boost = 4.0;
  spec.profile = ActivityProfile::conference();
  return spec;
}

TEST(Generator, Deterministic) {
  const auto a = generate_trace(small_spec(), 42);
  const auto b = generate_trace(small_spec(), 42);
  ASSERT_EQ(a.graph.num_contacts(), b.graph.num_contacts());
  EXPECT_TRUE(std::ranges::equal(a.graph.contacts(), b.graph.contacts()));
}

TEST(Generator, DifferentSeedsDiffer) {
  const auto a = generate_trace(small_spec(), 1);
  const auto b = generate_trace(small_spec(), 2);
  EXPECT_FALSE(std::ranges::equal(a.graph.contacts(), b.graph.contacts()));
}

TEST(Generator, ContactVolumeNearTarget) {
  const auto spec = small_spec();
  const auto t = generate_trace(spec, 7);
  // Expected: pair_mean * (cross + boost*intra) pairs. 20 nodes in 4
  // communities of 5: intra = 4*10 = 40, cross = 190 - 40 = 150.
  const double expected = 6.0 * (150.0 + 4.0 * 40.0);
  const auto count = static_cast<double>(t.graph.num_contacts());
  EXPECT_GT(count, 0.55 * expected);  // merging shrinks the count a bit
  EXPECT_LT(count, 1.15 * expected);
}

TEST(Generator, ContactsQuantizedToGranularity) {
  const auto t = generate_trace(small_spec(), 9);
  for (const Contact& c : t.graph.contacts()) {
    const double b = c.begin / 120.0;
    const double d = c.duration() / 120.0;
    ASSERT_NEAR(b, std::round(b), 1e-9);
    ASSERT_NEAR(d, std::round(d), 1e-9);
    ASSERT_GE(c.duration(), 120.0);
  }
}

TEST(Generator, ContactsWithinDurationWindow) {
  const auto spec = small_spec();
  const auto t = generate_trace(spec, 11);
  for (const Contact& c : t.graph.contacts()) {
    ASSERT_GE(c.begin, 0.0);
    ASSERT_LE(c.begin, spec.duration);
  }
}

TEST(Generator, NoDuplicateOverlapsPerPair) {
  const auto t = generate_trace(small_spec(), 13);
  std::map<std::pair<NodeId, NodeId>, double> last_end;
  for (const Contact& c : t.graph.contacts()) {
    const auto key = std::minmax(c.u, c.v);
    const auto it = last_end.find(key);
    if (it != last_end.end()) {
      ASSERT_GT(c.begin, it->second) << "overlapping same-pair contacts";
    }
    last_end[key] = std::max(last_end.count(key) ? last_end[key] : 0.0, c.end);
  }
}

TEST(Generator, CommunityPairsMeetMoreOften) {
  auto spec = small_spec();
  spec.pair_contacts_mean = 10.0;
  spec.node_activity_sigma = 0.0;  // isolate the community effect
  const auto t = generate_trace(spec, 17);
  // Community of node i is i % 4.
  double intra = 0, cross = 0;
  std::size_t intra_pairs = 40, cross_pairs = 150;
  for (const Contact& c : t.graph.contacts()) {
    if (c.u % 4 == c.v % 4) {
      intra += 1;
    } else {
      cross += 1;
    }
  }
  const double intra_rate = intra / intra_pairs;
  const double cross_rate = cross / cross_pairs;
  EXPECT_GT(intra_rate, 2.0 * cross_rate);
}

TEST(Generator, ExternalDevicesOnlyTalkToInternal) {
  auto spec = small_spec();
  spec.num_external = 30;
  spec.external_pair_contacts_mean = 0.5;
  const auto t = generate_trace(spec, 19);
  EXPECT_EQ(t.graph.num_nodes(), 50u);
  EXPECT_GT(t.external_contact_count(), 0u);
  for (const Contact& c : t.graph.contacts()) {
    const bool u_ext = c.u >= 20, v_ext = c.v >= 20;
    ASSERT_FALSE(u_ext && v_ext) << "external-external contact logged";
  }
}

TEST(Generator, InternalHelpers) {
  auto spec = small_spec();
  spec.num_external = 5;
  spec.external_pair_contacts_mean = 0.2;
  const auto t = generate_trace(spec, 23);
  EXPECT_EQ(t.internal_nodes().size(), 20u);
  EXPECT_EQ(t.internal_contact_count() + t.external_contact_count(),
            t.graph.num_contacts());
  EXPECT_GT(t.internal_contact_rate(kDay, false), 0.0);
  EXPECT_GE(t.internal_contact_rate(kDay, true),
            t.internal_contact_rate(kDay, false));
}

TEST(Generator, InvalidSpecsThrow) {
  auto spec = small_spec();
  spec.num_internal = 1;
  EXPECT_THROW(generate_trace(spec, 1), std::invalid_argument);
  spec = small_spec();
  spec.duration = 0;
  EXPECT_THROW(generate_trace(spec, 1), std::invalid_argument);
}

}  // namespace
}  // namespace odtn
