#include "util/ascii_plot.hpp"

#include <gtest/gtest.h>

#include <limits>

namespace odtn {
namespace {

TEST(AsciiPlot, RendersSeriesAndLegend) {
  PlotSeries s{"rising", {0, 1, 2, 3}, {0, 1, 2, 3}};
  PlotOptions opt;
  opt.x_label = "x";
  opt.y_label = "y";
  const std::string plot = render_ascii_plot({s}, opt);
  EXPECT_NE(plot.find('*'), std::string::npos);
  EXPECT_NE(plot.find("rising"), std::string::npos);
  EXPECT_NE(plot.find("[x]"), std::string::npos);
}

TEST(AsciiPlot, MultipleSeriesUseDistinctGlyphs) {
  PlotSeries a{"a", {0, 1}, {0, 0}};
  PlotSeries b{"b", {0, 1}, {1, 1}};
  const std::string plot = render_ascii_plot({a, b}, {});
  EXPECT_NE(plot.find('*'), std::string::npos);
  EXPECT_NE(plot.find('o'), std::string::npos);
}

TEST(AsciiPlot, SkipsNonFinitePoints) {
  const double inf = std::numeric_limits<double>::infinity();
  PlotSeries s{"s", {0, 1, 2}, {0, inf, 2}};
  EXPECT_NO_THROW(render_ascii_plot({s}, {}));
}

TEST(AsciiPlot, LogXSkipsNonPositive) {
  PlotSeries s{"s", {0.0, 1.0, 10.0, 100.0}, {1, 2, 3, 4}};
  PlotOptions opt;
  opt.log_x = true;
  EXPECT_NO_THROW(render_ascii_plot({s}, opt));
}

TEST(AsciiPlot, DurationTicks) {
  PlotSeries s{"s", {60.0, 3600.0}, {0, 1}};
  PlotOptions opt;
  opt.log_x = true;
  opt.x_as_duration = true;
  const std::string plot = render_ascii_plot({s}, opt);
  EXPECT_NE(plot.find("min"), std::string::npos);
}

TEST(AsciiPlot, EmptySeriesDoesNotCrash) {
  PlotSeries s{"empty", {}, {}};
  EXPECT_NO_THROW(render_ascii_plot({s}, {}));
}

TEST(AsciiPlot, FixedYRangeRespected) {
  PlotSeries s{"s", {0, 1}, {0.2, 0.8}};
  PlotOptions opt;
  opt.y_min = 0.0;
  opt.y_max = 1.0;
  const std::string plot = render_ascii_plot({s}, opt);
  EXPECT_NE(plot.find("1"), std::string::npos);  // the top tick shows 1
}

}  // namespace
}  // namespace odtn
