// Unit tests for the (LD, EA) algebra of paper §4.2, including the
// concatenation examples of Figure 4.
#include "core/path_pair.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <vector>

namespace odtn {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

TEST(PathPair, PairOfContact) {
  const Contact c{0, 1, 3.0, 8.0};
  const PathPair p = pair_of_contact(c);
  EXPECT_DOUBLE_EQ(p.ld, 8.0);  // can depart as late as the contact end
  EXPECT_DOUBLE_EQ(p.ea, 3.0);  // can arrive as early as the contact begin
}

TEST(PathPair, DominanceDefinition) {
  const PathPair better{10.0, 2.0};
  const PathPair worse{5.0, 4.0};
  EXPECT_TRUE(dominates(better, worse));
  EXPECT_FALSE(dominates(worse, better));
  EXPECT_TRUE(dominates(better, better));  // reflexive
}

TEST(PathPair, IncomparablePairs) {
  const PathPair late_start{10.0, 8.0};
  const PathPair early_arrival{2.0, 1.0};
  EXPECT_FALSE(dominates(late_start, early_arrival));
  EXPECT_FALSE(dominates(early_arrival, late_start));
}

TEST(PathPair, ConcatenationCondition) {
  // Fact (iv): e then e' concatenates iff EA(e) <= LD(e').
  const PathPair left{5.0, 3.0};
  EXPECT_TRUE(can_concatenate(left, {3.0, 1.0}));   // EA == LD boundary
  EXPECT_TRUE(can_concatenate(left, {10.0, 9.0}));  // later sequence
  EXPECT_FALSE(can_concatenate(left, {2.0, 0.0}));  // ends before EA
}

TEST(PathPair, ConcatenationComposesMinMax) {
  const PathPair left{5.0, 3.0};
  const PathPair right{10.0, 7.0};
  ASSERT_TRUE(can_concatenate(left, right));
  const PathPair joined = concatenate(left, right);
  EXPECT_DOUBLE_EQ(joined.ld, 5.0);  // min of LDs
  EXPECT_DOUBLE_EQ(joined.ea, 7.0);  // max of EAs
}

// Figure 4(a): two contacts whose composition has EA > LD -- a store-and-
// forward sequence without contemporaneous connectivity.
TEST(PathPair, Figure4aStoreAndForward) {
  const Contact c01{0, 1, 0.0, 2.0};  // (v0, v1)
  const Contact c12{1, 2, 4.0, 6.0};  // (v1, v2), after c01 ended
  const PathPair p01 = pair_of_contact(c01);
  const PathPair p12 = pair_of_contact(c12);
  ASSERT_TRUE(can_concatenate(p01, p12));  // EA=0 <= LD=6
  const PathPair joined = concatenate(p01, p12);
  EXPECT_DOUBLE_EQ(joined.ld, 2.0);
  EXPECT_DOUBLE_EQ(joined.ea, 4.0);
  EXPECT_GT(joined.ea, joined.ld);  // no contemporaneous path
  // The message must leave v0 by t=2 and arrives at t=4.
  EXPECT_DOUBLE_EQ(deliver_at(joined, 1.0), 4.0);
  EXPECT_EQ(deliver_at(joined, 3.0), kInf);  // too late to depart
}

// Figure 4(b): overlapping contacts -- contemporaneous connectivity,
// EA <= LD after composition.
TEST(PathPair, Figure4bContemporaneous) {
  const Contact c01{0, 1, 0.0, 10.0};
  const Contact c12{1, 2, 4.0, 6.0};
  const PathPair joined =
      concatenate(pair_of_contact(c01), pair_of_contact(c12));
  EXPECT_DOUBLE_EQ(joined.ld, 6.0);
  EXPECT_DOUBLE_EQ(joined.ea, 4.0);
  EXPECT_LE(joined.ea, joined.ld);
  // Inside [EA, LD] delivery is immediate.
  EXPECT_DOUBLE_EQ(deliver_at(joined, 5.0), 5.0);
  // Before EA, delivery waits until EA.
  EXPECT_DOUBLE_EQ(deliver_at(joined, 1.0), 4.0);
}

TEST(PathPair, ConcatenationNotAlwaysPossible) {
  // The counterexample family of §4.2: both sequences valid but their
  // concatenation violates Eq. (2).
  const PathPair left{5.0, 8.0};   // EA 8 (arrives at 8 earliest)
  const PathPair right{6.0, 2.0};  // ends by 6
  EXPECT_FALSE(can_concatenate(left, right));
}

TEST(TimeRespecting, Equation2) {
  // Valid: ends never precede an earlier begin.
  const std::vector<Contact> valid{{0, 1, 0.0, 2.0}, {1, 2, 1.0, 5.0}};
  EXPECT_TRUE(is_time_respecting(valid));
  // Invalid: second contact is entirely before the first begins.
  const std::vector<Contact> invalid{{0, 1, 4.0, 6.0}, {1, 2, 0.0, 2.0}};
  EXPECT_FALSE(is_time_respecting(invalid));
}

TEST(TimeRespecting, NonAdjacentViolation) {
  // Eq. (2) uses the max over ALL earlier begins, not just the previous.
  const std::vector<Contact> seq{
      {0, 1, 10.0, 20.0}, {1, 2, 0.0, 30.0}, {2, 3, 0.0, 5.0}};
  // Contact 3 ends at 5 < begin of contact 1 (10): invalid.
  EXPECT_FALSE(is_time_respecting(seq));
}

TEST(TimeRespecting, SingleContactAlwaysValid) {
  const std::vector<Contact> seq{{0, 1, 3.0, 3.0}};
  EXPECT_TRUE(is_time_respecting(seq));
}

TEST(SummarizeSequence, MatchesFoldedConcatenation) {
  const std::vector<Contact> seq{
      {0, 1, 0.0, 9.0}, {1, 2, 2.0, 7.0}, {2, 3, 4.0, 20.0}};
  ASSERT_TRUE(is_time_respecting(seq));
  const PathPair direct = summarize_sequence(seq);
  PathPair folded = pair_of_contact(seq[0]);
  for (std::size_t i = 1; i < seq.size(); ++i) {
    ASSERT_TRUE(can_concatenate(folded, pair_of_contact(seq[i])));
    folded = concatenate(folded, pair_of_contact(seq[i]));
  }
  EXPECT_EQ(direct, folded);
  EXPECT_DOUBLE_EQ(direct.ld, 7.0);
  EXPECT_DOUBLE_EQ(direct.ea, 4.0);
}

TEST(DeliverAt, SinglePairSemantics) {
  const PathPair p{10.0, 4.0};
  EXPECT_DOUBLE_EQ(deliver_at(p, 0.0), 4.0);   // wait for EA
  EXPECT_DOUBLE_EQ(deliver_at(p, 7.0), 7.0);   // instantaneous within window
  EXPECT_DOUBLE_EQ(deliver_at(p, 10.0), 10.0); // boundary departs
  EXPECT_EQ(deliver_at(p, 10.5), kInf);        // missed the last departure
}

}  // namespace
}  // namespace odtn
