#include "core/query_engine.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/diameter.hpp"
#include "stats/log_grid.hpp"
#include "trace/generators.hpp"
#include "trace/snapshot.hpp"
#include "util/time_format.hpp"

namespace odtn {
namespace {

TemporalGraph workload_graph(std::uint64_t seed = 4242) {
  // Small but non-trivial synthetic conference trace: enough nodes for
  // caching and folding order to matter, small enough for quick tier-1.
  SyntheticTraceSpec spec;
  spec.name = "query_engine_test";
  spec.num_internal = 24;
  spec.duration = 2.0 * kDay;
  spec.pair_contacts_mean = 0.8;
  spec.num_communities = 4;
  return generate_trace(spec, seed).graph;
}

QueryEngineOptions small_options() {
  QueryEngineOptions qo;
  qo.grid = make_log_grid(60.0, 2.0 * kDay, 24);
  qo.max_hops = 5;
  qo.num_threads = 2;
  return qo;
}

void expect_bitwise_equal(const DelayCdfResult& a, const DelayCdfResult& b) {
  EXPECT_EQ(a.grid, b.grid);
  EXPECT_EQ(a.cdf_by_hops, b.cdf_by_hops);
  EXPECT_EQ(a.cdf_unbounded, b.cdf_unbounded);
  EXPECT_EQ(a.fixpoint_hops, b.fixpoint_hops);
  EXPECT_EQ(a.converged, b.converged);
  EXPECT_EQ(a.denominator, b.denominator);
  EXPECT_EQ(a.diameter(0.01), b.diameter(0.01));
  EXPECT_EQ(a.diameter_absolute(0.01), b.diameter_absolute(0.01));
}

TEST(QueryEngine, ColdAllPairsMatchesComputeDelayCdfBitwise) {
  const TemporalGraph g = workload_graph();
  const QueryEngineOptions qo = small_options();

  DelayCdfOptions ref;
  ref.grid = qo.grid;
  ref.max_hops = qo.max_hops;
  ref.max_levels = qo.max_levels;
  ref.num_threads = qo.num_threads;
  const DelayCdfResult expected = compute_delay_cdf(g, ref);

  QueryEngine engine(g, qo);
  const DelayCdfResult got = engine.all_pairs();
  expect_bitwise_equal(expected, got);
  EXPECT_EQ(got.stats.cache_hits, 0u);
  EXPECT_EQ(got.stats.cache_misses, g.num_nodes());
}

TEST(QueryEngine, WarmAllPairsIsBitIdenticalToCold) {
  QueryEngine engine(workload_graph(), small_options());
  const DelayCdfResult cold = engine.all_pairs();
  const DelayCdfResult warm = engine.all_pairs();
  expect_bitwise_equal(cold, warm);
  EXPECT_EQ(warm.stats.cache_hits, engine.graph().num_nodes());
  EXPECT_EQ(warm.stats.cache_misses, 0u);
  // A warm run touches no propagation engine at all.
  EXPECT_EQ(warm.stats.contacts_examined, 0u);
}

TEST(QueryEngine, PartiallyWarmAllPairsIsBitIdentical) {
  const TemporalGraph g = workload_graph();
  QueryEngine cold_engine(g, small_options());
  const DelayCdfResult cold = cold_engine.all_pairs();

  // Warm only some sources via per-source queries, then fold all-pairs
  // from the mixed cache: identical bits either way.
  QueryEngine mixed(g, small_options());
  for (NodeId src = 0; src < g.num_nodes(); src += 3)
    (void)mixed.source_cdf(src);
  const DelayCdfResult folded = mixed.all_pairs();
  expect_bitwise_equal(cold, folded);
  EXPECT_GT(folded.stats.cache_hits, 0u);
  EXPECT_GT(folded.stats.cache_misses, 0u);
}

TEST(QueryEngine, TinyCacheBudgetStillBitIdentical) {
  const TemporalGraph g = workload_graph();
  QueryEngine reference(g, small_options());
  const DelayCdfResult expected = reference.all_pairs();

  // Room for roughly two partials across 2 shards: constant evictions,
  // same answers.
  QueryEngineOptions qo = small_options();
  qo.cache_shards = 2;
  qo.cache_bytes = 2 * reference.cached_partial_bytes();
  QueryEngine engine(g, qo);
  const DelayCdfResult first = engine.all_pairs();
  const DelayCdfResult second = engine.all_pairs();
  expect_bitwise_equal(expected, first);
  expect_bitwise_equal(expected, second);
  EXPECT_GT(first.stats.cache_evictions, 0u);
  EXPECT_EQ(engine.cache_stats().evictions,
            first.stats.cache_evictions + second.stats.cache_evictions);
}

TEST(QueryEngine, SourceCdfHitsAfterAllPairs) {
  QueryEngine engine(workload_graph(), small_options());
  (void)engine.all_pairs();
  const DelayCdfResult r = engine.source_cdf(5);
  EXPECT_EQ(r.stats.cache_hits, 1u);
  EXPECT_EQ(r.stats.cache_misses, 0u);

  // A different window is a different key: computed fresh.
  const double mid =
      engine.graph().start_time() + engine.graph().duration() / 2;
  const DelayCdfResult windowed =
      engine.source_cdf(5, engine.graph().start_time(), mid);
  EXPECT_EQ(windowed.stats.cache_hits, 0u);
  EXPECT_EQ(windowed.stats.cache_misses, 1u);
}

TEST(QueryEngine, WindowedQueriesRoundTripThroughCache) {
  QueryEngine engine(workload_graph(), small_options());
  const double lo = engine.graph().start_time();
  const double hi = lo + engine.graph().duration() / 3;
  const DelayCdfResult cold = engine.all_pairs(lo, hi);
  const DelayCdfResult warm = engine.all_pairs(lo, hi);
  expect_bitwise_equal(cold, warm);
  EXPECT_EQ(warm.stats.cache_misses, 0u);
}

TEST(QueryEngine, SnapshotViewMatchesOwnedGraphBitwise) {
  const TemporalGraph g = workload_graph();
  const TemporalGraph view = decode_snapshot(
      std::make_shared<const std::vector<std::uint8_t>>(encode_snapshot(g)));
  QueryEngine owned(g, small_options());
  QueryEngine mapped(view, small_options());
  expect_bitwise_equal(owned.all_pairs(), mapped.all_pairs());
}

TEST(QueryEngine, SharedCacheCrossTransformKeysNoContamination) {
  const TemporalGraph g = workload_graph();
  // A genuinely different trace (different seed) sharing the cache.
  const TemporalGraph h = workload_graph(977);

  const QueryEngineOptions qo = small_options();
  auto cache = std::make_shared<ServeCache>(qo.cache_bytes, qo.cache_shards);
  QueryEngine eg(g, qo, cache);
  QueryEngine eh(h, qo, cache);

  QueryEngine ref_g(g, qo);
  QueryEngine ref_h(h, qo);
  const DelayCdfResult want_g = ref_g.all_pairs();
  const DelayCdfResult want_h = ref_h.all_pairs();

  // Interleave: fill the shared cache from both graphs, then re-query.
  expect_bitwise_equal(want_g, eg.all_pairs());
  expect_bitwise_equal(want_h, eh.all_pairs());
  const DelayCdfResult warm_g = eg.all_pairs();
  const DelayCdfResult warm_h = eh.all_pairs();
  expect_bitwise_equal(want_g, warm_g);
  expect_bitwise_equal(want_h, warm_h);
  // Both warm runs answered fully from the shared cache -- and from
  // their OWN entries (a cross-key hit would have failed the bitwise
  // checks above, since g and h differ).
  EXPECT_EQ(warm_g.stats.cache_misses, 0u);
  EXPECT_EQ(warm_h.stats.cache_misses, 0u);
}

TEST(QueryEngine, CacheKeyBindsEngineParameters) {
  const TemporalGraph g = workload_graph();
  const QueryEngineOptions qo = small_options();
  auto cache = std::make_shared<ServeCache>(qo.cache_bytes, qo.cache_shards);
  QueryEngine a(g, qo, cache);
  (void)a.all_pairs();

  // Same graph, different hop budget: the shared cache must not serve
  // the other engine's partials.
  QueryEngineOptions qo2 = qo;
  qo2.max_hops = qo.max_hops + 1;
  QueryEngine b(g, qo2, cache);
  const DelayCdfResult r = b.all_pairs();
  EXPECT_EQ(r.stats.cache_hits, 0u);

  DelayCdfOptions ref;
  ref.grid = qo2.grid;
  ref.max_hops = qo2.max_hops;
  ref.num_threads = qo2.num_threads;
  expect_bitwise_equal(compute_delay_cdf(g, ref), r);
}

TEST(QueryEngine, ReachableCountAndJourney) {
  // 0 -[10,20]- 1 -[30,40]- 2, node 3 isolated.
  const TemporalGraph g(4, {{0, 1, 10.0, 20.0}, {1, 2, 30.0, 40.0}});
  QueryEngineOptions qo;
  qo.grid = make_log_grid(1.0, 100.0, 8);
  QueryEngine engine(g, qo);

  EXPECT_EQ(engine.reachable_count(0, 0.0), 2u);   // 1 and 2
  EXPECT_EQ(engine.reachable_count(0, 25.0), 0u);  // 0-1 window passed
  EXPECT_EQ(engine.reachable_count(3, 0.0), 0u);   // isolated

  const JourneyOptima j = engine.journey(0, 2);
  EXPECT_TRUE(j.reachable());
  EXPECT_EQ(j.shortest_hops, 2);
  // Depart at 20 (end of the first window), arrive at 30: 10 s.
  EXPECT_DOUBLE_EQ(j.fastest_duration, 10.0);
  EXPECT_FALSE(engine.journey(0, 3).reachable());
}

TEST(QueryEngine, RejectsBadArguments) {
  const TemporalGraph g = workload_graph();
  EXPECT_THROW(QueryEngine(g, QueryEngineOptions{}), std::invalid_argument);
  QueryEngine engine(g, small_options());
  EXPECT_THROW(engine.source_cdf(9999), std::invalid_argument);
  EXPECT_THROW(engine.reachable_count(9999, 0.0), std::invalid_argument);
  EXPECT_THROW(engine.journey(0, 9999), std::invalid_argument);
}

}  // namespace
}  // namespace odtn
