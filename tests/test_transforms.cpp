#include "trace/transforms.hpp"

#include <gtest/gtest.h>

#include "trace/generators.hpp"
#include "util/time_format.hpp"

namespace odtn {
namespace {

TemporalGraph sample_graph() {
  SyntheticTraceSpec spec;
  spec.num_internal = 15;
  spec.duration = 2 * kDay;
  spec.pair_contacts_mean = 8.0;
  spec.num_communities = 3;
  return generate_trace(spec, 5).graph;
}

TEST(RandomRemoval, RemovesExpectedFraction) {
  const auto g = sample_graph();
  Rng rng(1);
  const auto r = remove_contacts_random(g, 0.9, rng);
  const double kept_fraction =
      static_cast<double>(r.num_contacts()) /
      static_cast<double>(g.num_contacts());
  EXPECT_NEAR(kept_fraction, 0.1, 0.03);
  EXPECT_EQ(r.num_nodes(), g.num_nodes());
}

TEST(RandomRemoval, ZeroAndOneAreIdentityAndEmpty) {
  const auto g = sample_graph();
  Rng rng(2);
  EXPECT_EQ(remove_contacts_random(g, 0.0, rng).num_contacts(),
            g.num_contacts());
  EXPECT_EQ(remove_contacts_random(g, 1.0, rng).num_contacts(), 0u);
}

TEST(RandomRemoval, SurvivorsAreOriginalContacts) {
  const auto g = sample_graph();
  Rng rng(3);
  const auto r = remove_contacts_random(g, 0.5, rng);
  for (const Contact& c : r.contacts()) {
    const auto& all = g.contacts();
    EXPECT_NE(std::find(all.begin(), all.end(), c), all.end());
  }
}

TEST(RandomRemoval, RejectsBadProbability) {
  const auto g = sample_graph();
  Rng rng(4);
  EXPECT_THROW(remove_contacts_random(g, -0.1, rng), std::invalid_argument);
  EXPECT_THROW(remove_contacts_random(g, 1.1, rng), std::invalid_argument);
}

TEST(DurationThreshold, KeepsOnlyLongContacts) {
  const auto g = sample_graph();
  const double threshold = 10 * kMinute;
  const auto r = remove_contacts_shorter_than(g, threshold);
  for (const Contact& c : r.contacts()) ASSERT_GE(c.duration(), threshold);
  std::size_t expected = 0;
  for (const Contact& c : g.contacts())
    if (c.duration() >= threshold) ++expected;
  EXPECT_EQ(r.num_contacts(), expected);
  EXPECT_LT(r.num_contacts(), g.num_contacts());  // short contacts existed
}

TEST(DurationThreshold, ZeroThresholdIsIdentity) {
  const auto g = sample_graph();
  EXPECT_EQ(remove_contacts_shorter_than(g, 0.0).num_contacts(),
            g.num_contacts());
}

TEST(TimeWindow, ClipsAndDrops) {
  TemporalGraph g(3, {{0, 1, 0.0, 10.0}, {1, 2, 20.0, 30.0},
                      {0, 2, 5.0, 25.0}});
  const auto r = restrict_time_window(g, 8.0, 22.0);
  ASSERT_EQ(r.num_contacts(), 3u);
  for (const Contact& c : r.contacts()) {
    ASSERT_GE(c.begin, 8.0);
    ASSERT_LE(c.end, 22.0);
  }
  const auto r2 = restrict_time_window(g, 11.0, 19.0);
  // Only the long 0-2 contact intersects (11, 19).
  ASSERT_EQ(r2.num_contacts(), 1u);
  EXPECT_EQ(r2.contacts()[0].u, 0u);
  EXPECT_EQ(r2.contacts()[0].v, 2u);
}

TEST(TimeWindow, KeepsZeroDurationContacts) {
  // Instantaneous contacts (continuous-time random model, Section 3.1.2)
  // are legal and must survive windowing; contacts touching the window
  // edge clamp to zero duration rather than vanishing.
  TemporalGraph g(4, {{0, 1, 10.0, 10.0},    // instantaneous, inside
                      {1, 2, 0.0, 8.0},      // ends exactly at the edge
                      {2, 3, 22.0, 22.0},    // instantaneous, at the edge
                      {0, 3, 1.0, 2.0},      // fully before: dropped
                      {0, 2, 3.0, 3.0}});    // instantaneous before: dropped
  const auto r = restrict_time_window(g, 8.0, 22.0);
  ASSERT_EQ(r.num_contacts(), 3u);
  EXPECT_EQ(r.contacts()[0], (Contact{1, 2, 8.0, 8.0}));
  EXPECT_EQ(r.contacts()[1], (Contact{0, 1, 10.0, 10.0}));
  EXPECT_EQ(r.contacts()[2], (Contact{2, 3, 22.0, 22.0}));
}

TEST(TimeWindow, EmptyWindowThrows) {
  const auto g = sample_graph();
  EXPECT_THROW(restrict_time_window(g, 5.0, 5.0), std::invalid_argument);
}

TEST(DurationThreshold, KeepsZeroDurationContactsAtZeroThreshold) {
  // The restrict_time_window zero-duration bug class: begin == end is a
  // legal contact, so a duration threshold of 0 must keep it (removal is
  // strictly-less-than).
  TemporalGraph g(3, {{0, 1, 5.0, 5.0}, {1, 2, 6.0, 20.0}});
  const auto all = remove_contacts_shorter_than(g, 0.0);
  EXPECT_EQ(all.num_contacts(), 2u);
  const auto longer = remove_contacts_shorter_than(g, 1.0);
  ASSERT_EQ(longer.num_contacts(), 1u);
  EXPECT_EQ(longer.contacts()[0], (Contact{1, 2, 6.0, 20.0}));
}

TEST(RandomRemoval, KeepsZeroDurationContactsLikeAnyOther) {
  // Survival must depend only on the coin flip, never the duration.
  std::vector<Contact> contacts;
  for (int i = 0; i < 200; ++i)
    contacts.push_back({0, 1, static_cast<double>(i), static_cast<double>(i)});
  const TemporalGraph g(2, std::move(contacts));
  Rng rng(9);
  const auto r = remove_contacts_random(g, 0.5, rng);
  EXPECT_GT(r.num_contacts(), 50u);
  EXPECT_LT(r.num_contacts(), 150u);
}

TEST(RandomRemoval, SameSeedSameOutputRegardlessOfInputOrder) {
  // (seed, p) fully determines the kept set: the graph canonicalizes its
  // contact order at construction, so feeding the constructor a shuffled
  // contact list must not change which contacts survive.
  const auto g = sample_graph();
  std::vector<Contact> shuffled = g.contacts_vector();
  Rng shuffle_rng(77);
  for (std::size_t i = shuffled.size(); i > 1; --i)
    std::swap(shuffled[i - 1], shuffled[shuffle_rng.below(i)]);
  const TemporalGraph reordered(g.num_nodes(), std::move(shuffled),
                                g.directed());
  for (const double p : {0.1, 0.5, 0.9}) {
    Rng a(123), b(123);
    const auto ra = remove_contacts_random(g, p, a);
    const auto rb = remove_contacts_random(reordered, p, b);
    ASSERT_EQ(ra.num_contacts(), rb.num_contacts());
    EXPECT_TRUE(std::equal(ra.contacts().begin(), ra.contacts().end(),
                           rb.contacts().begin()));
  }
  // Reference-path cross-check: the transform's kept set equals a plain
  // replay of the same Bernoulli stream over the canonical contacts.
  Rng c(123);
  const auto rc = remove_contacts_random(g, 0.5, c);
  Rng replay(123);
  std::vector<Contact> expected;
  for (const Contact& contact : g.contacts())
    if (!replay.bernoulli(0.5)) expected.push_back(contact);
  ASSERT_EQ(rc.num_contacts(), expected.size());
  EXPECT_TRUE(std::equal(rc.contacts().begin(), rc.contacts().end(),
                         expected.begin()));
}

TEST(DurationThreshold, OutputIndependentOfInputOrder) {
  const auto g = sample_graph();
  std::vector<Contact> reversed = g.contacts_vector();
  std::reverse(reversed.begin(), reversed.end());
  const TemporalGraph reordered(g.num_nodes(), std::move(reversed),
                                g.directed());
  const auto ra = remove_contacts_shorter_than(g, 10 * kMinute);
  const auto rb = remove_contacts_shorter_than(reordered, 10 * kMinute);
  ASSERT_EQ(ra.num_contacts(), rb.num_contacts());
  EXPECT_TRUE(std::equal(ra.contacts().begin(), ra.contacts().end(),
                         rb.contacts().begin()));
}

TEST(KeepInternal, DropsExternalContactsAndNodes) {
  SyntheticTraceSpec spec;
  spec.num_internal = 10;
  spec.num_external = 20;
  spec.duration = kDay;
  spec.pair_contacts_mean = 4.0;
  spec.external_pair_contacts_mean = 0.5;
  const auto t = generate_trace(spec, 7);
  ASSERT_GT(t.external_contact_count(), 0u);
  const auto internal = keep_internal_contacts(t.graph, 10);
  EXPECT_EQ(internal.num_nodes(), 10u);
  EXPECT_EQ(internal.num_contacts(), t.internal_contact_count());
  EXPECT_THROW(keep_internal_contacts(t.graph, 99), std::invalid_argument);
}

}  // namespace
}  // namespace odtn
