#include "random/contact_process.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "random/random_temporal_network.hpp"
#include "stats/summary.hpp"
#include "util/rng.hpp"
#include "util/time_format.hpp"

namespace odtn {
namespace {

class InterContactLaws
    : public ::testing::TestWithParam<InterContactLaw> {};

TEST_P(InterContactLaws, MeanMatchesAcrossLaws) {
  Rng rng(11);
  RenewalConfig config;
  config.law = GetParam();
  for (double mean : {1.0, 50.0}) {
    SummaryStats stats;
    for (int i = 0; i < 40000; ++i)
      stats.add(sample_inter_contact(rng, config, mean));
    EXPECT_NEAR(stats.mean(), mean,
                std::max(6.0 * stats.stderr_mean(), 1e-9 * mean))
        << inter_contact_law_name(GetParam()) << " mean=" << mean;
    EXPECT_GE(stats.min(), 0.0);
  }
}

TEST_P(InterContactLaws, EmpiricalCvMatchesAnalytic) {
  Rng rng(13);
  RenewalConfig config;
  config.law = GetParam();
  SummaryStats stats;
  for (int i = 0; i < 60000; ++i)
    stats.add(sample_inter_contact(rng, config, 1.0));
  const double empirical_cv = stats.stddev() / stats.mean();
  EXPECT_NEAR(empirical_cv, inter_contact_cv(config),
              0.05 * std::max(1.0, inter_contact_cv(config)))
      << inter_contact_law_name(GetParam());
}

INSTANTIATE_TEST_SUITE_P(
    AllLaws, InterContactLaws,
    ::testing::Values(InterContactLaw::kExponential,
                      InterContactLaw::kDeterministic,
                      InterContactLaw::kUniform,
                      InterContactLaw::kHyperExponential,
                      InterContactLaw::kBoundedPareto),
    [](const auto& param_info) {
      std::string name = inter_contact_law_name(param_info.param);
      name.erase(std::remove(name.begin(), name.end(), '-'), name.end());
      return name;
    });

TEST(InterContact, CvOrdering) {
  RenewalConfig hyper;
  hyper.law = InterContactLaw::kHyperExponential;
  hyper.hyper_cv = 4.0;
  RenewalConfig pareto;
  pareto.law = InterContactLaw::kBoundedPareto;
  EXPECT_DOUBLE_EQ(inter_contact_cv({InterContactLaw::kDeterministic}), 0.0);
  EXPECT_LT(inter_contact_cv({InterContactLaw::kUniform}), 1.0);
  EXPECT_DOUBLE_EQ(inter_contact_cv({InterContactLaw::kExponential}), 1.0);
  EXPECT_NEAR(inter_contact_cv(hyper), 4.0, 1e-9);
  EXPECT_GT(inter_contact_cv(pareto), 1.0);  // heavy tail
}

TEST(InterContact, LawNamesAreDistinct) {
  EXPECT_STRNE(inter_contact_law_name(InterContactLaw::kExponential),
               inter_contact_law_name(InterContactLaw::kBoundedPareto));
}

TEST(ContactProcessGraph, ExponentialMatchesBaseModel) {
  // With exponential gaps and no heterogeneity/profile, the process is
  // the continuous-time model of Section 3.1.2: check contact volume.
  Rng rng(17);
  ContactProcessOptions options;
  const std::size_t n = 40;
  const double lambda = 1.5, duration = 300.0;
  const auto g =
      make_contact_process_graph(n, lambda, duration, options, rng);
  const double expected = duration * lambda / n * num_pairs(n);
  EXPECT_NEAR(static_cast<double>(g.num_contacts()), expected,
              6.0 * std::sqrt(expected));
  for (const Contact& c : g.contacts()) {
    EXPECT_DOUBLE_EQ(c.duration(), 0.0);
    EXPECT_GE(c.begin, 0.0);
    EXPECT_LE(c.begin, duration);
  }
}

TEST(ContactProcessGraph, DeterministicGapsAreRegular) {
  Rng rng(19);
  ContactProcessOptions options;
  options.renewal.law = InterContactLaw::kDeterministic;
  const auto g = make_contact_process_graph(4, 1.0, 100.0, options, rng);
  // Each pair's events are spaced by exactly its mean (n/lambda = 4).
  for (NodeId u = 0; u < 4; ++u) {
    for (NodeId v = u + 1; v < 4; ++v) {
      double prev = -1.0;
      for (const Contact& c : g.contacts()) {
        if (std::min(c.u, c.v) != u || std::max(c.u, c.v) != v) continue;
        if (prev >= 0.0) {
          EXPECT_NEAR(c.begin - prev, 4.0, 1e-9);
        }
        prev = c.begin;
      }
    }
  }
}

TEST(ContactProcessGraph, HeterogeneityPreservesTotalVolume) {
  Rng rng(23);
  ContactProcessOptions homogeneous;
  ContactProcessOptions heterogeneous;
  heterogeneous.node_weight_sigma = 1.0;
  const std::size_t n = 60;
  const auto a = make_contact_process_graph(n, 2.0, 400.0, homogeneous, rng);
  const auto b =
      make_contact_process_graph(n, 2.0, 400.0, heterogeneous, rng);
  // Unit-mean weights keep the expected volume; heterogeneity widens the
  // per-node spread.
  EXPECT_NEAR(static_cast<double>(b.num_contacts()),
              static_cast<double>(a.num_contacts()),
              0.35 * static_cast<double>(a.num_contacts()));
  SummaryStats spread_a, spread_b;
  for (NodeId v = 0; v < n; ++v) {
    spread_a.add(static_cast<double>(a.contacts_of(v).size()));
    spread_b.add(static_cast<double>(b.contacts_of(v).size()));
  }
  EXPECT_GT(spread_b.stddev(), 2.0 * spread_a.stddev());
}

TEST(ContactProcessGraph, ProfileGatesContactsInTime) {
  Rng rng(29);
  const auto profile = ActivityProfile::conference();
  ContactProcessOptions options;
  options.profile = &profile;
  const auto g =
      make_contact_process_graph(30, 3.0, 2 * kDay, options, rng);
  std::size_t day = 0, night = 0;
  for (const Contact& c : g.contacts()) {
    const double hour = std::fmod(c.begin, kDay) / kHour;
    if (hour >= 9 && hour < 18) ++day;
    if (hour < 6) ++night;
  }
  EXPECT_GT(day, 20 * std::max<std::size_t>(night, 1));
}

TEST(ContactProcessGraph, InvalidArgumentsThrow) {
  Rng rng(31);
  ContactProcessOptions options;
  EXPECT_THROW(make_contact_process_graph(1, 1.0, 10.0, options, rng),
               std::invalid_argument);
  EXPECT_THROW(make_contact_process_graph(5, 0.0, 10.0, options, rng),
               std::invalid_argument);
  EXPECT_THROW(make_contact_process_graph(5, 1.0, -1.0, options, rng),
               std::invalid_argument);
  EXPECT_THROW(sample_inter_contact(rng, RenewalConfig{}, 0.0),
               std::invalid_argument);
}

}  // namespace
}  // namespace odtn
