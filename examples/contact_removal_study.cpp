// What-if study: how does the network degrade as contacts disappear?
//
// Applies the paper's §6 methodology to a configurable trace: sweeps
// random-removal probabilities and duration thresholds, reporting
// flooding success at three time scales and the 99%-diameter for each.
// Shows the paper's asymmetry: random removal hurts delay but not the
// diameter; removing SHORT contacts preserves delay better but inflates
// the diameter.
//
// Usage: example_contact_removal_study [trace-file]
#include <cstdio>
#include <string>

#include "core/diameter.hpp"
#include "stats/log_grid.hpp"
#include "trace/generators.hpp"
#include "trace/trace_io.hpp"
#include "trace/transforms.hpp"
#include "util/rng.hpp"
#include "util/time_format.hpp"

using namespace odtn;

namespace {

double cdf_at(const DelayCdfResult& r, double delay) {
  std::size_t j = 0;
  while (j + 1 < r.grid.size() && r.grid[j] < delay) ++j;
  return 100.0 * r.cdf_unbounded[j];
}

void report_row(const char* label, const TemporalGraph& variant,
                const TemporalGraph& base) {
  DelayCdfOptions opt;
  opt.grid = make_log_grid(2 * kMinute, kDay, 36);
  opt.max_hops = 14;
  opt.t_lo = base.start_time();  // same window for every variant
  opt.t_hi = base.end_time();
  const auto r = compute_delay_cdf(variant, opt);
  std::printf("%-26s %9zu %11.1f %11.1f %11.1f %10d\n", label,
              variant.num_contacts(), cdf_at(r, 10 * kMinute),
              cdf_at(r, kHour), cdf_at(r, 6 * kHour), r.diameter(0.01));
}

}  // namespace

int main(int argc, char** argv) {
  TemporalGraph base = [&] {
    if (argc > 1) return read_trace_file(argv[1]);
    SyntheticTraceSpec spec;
    spec.name = "study";
    spec.num_internal = 35;
    spec.duration = 2 * kDay;
    spec.pair_contacts_mean = 2.0;
    spec.num_communities = 5;
    spec.gatherings = {260.0, 0.35, 0.06, 12 * kMinute, 0.8, 0.06};
    spec.profile = ActivityProfile::conference();
    return generate_trace(spec, 4040).graph;
  }();

  std::printf("base trace: %zu devices, %zu contacts, %s\n\n",
              base.num_nodes(), base.num_contacts(),
              format_duration(base.duration()).c_str());
  std::printf("%-26s %9s %11s %11s %11s %10s\n", "variant", "contacts",
              "P[<=10m] %", "P[<=1h] %", "P[<=6h] %", "diameter");

  report_row("original", base, base);

  Rng rng(11);
  for (double p : {0.5, 0.9, 0.99}) {
    char label[64];
    std::snprintf(label, sizeof label, "random removal p=%.2f", p);
    report_row(label, remove_contacts_random(base, p, rng), base);
  }
  for (double threshold : {2 * kMinute, 10 * kMinute, 30 * kMinute}) {
    char label[64];
    std::snprintf(label, sizeof label, "keep durations > %s",
                  format_duration(threshold).c_str());
    report_row(label, remove_contacts_shorter_than(base, threshold + 1.0),
               base);
  }

  std::printf(
      "\nReading the table: random removal collapses success at every\n"
      "time scale but leaves the diameter small; duration filtering of a\n"
      "comparable volume keeps far more success -- at the price of a\n"
      "larger diameter, because the short cross-community contacts were\n"
      "the shortcuts (paper §6).\n");
  return 0;
}
