// Design implication of the small diameter (paper §7): "messages can be
// discarded after a few number of hops without occurring more than a
// marginal performance cost."
//
// This example generates a conference trace, then compares forwarding
// policies under increasing hop TTLs: success rate within one hour /
// six hours, mean delay, and copy cost. The knee at TTL ~ diameter is
// the actionable result: an epidemic protocol with TTL 4-6 performs
// like unbounded flooding at a fraction of nothing lost.
#include <cstdio>
#include <limits>
#include <vector>

#include "sim/forwarding.hpp"
#include "stats/summary.hpp"
#include "trace/generators.hpp"
#include "util/rng.hpp"
#include "util/time_format.hpp"

using namespace odtn;

namespace {

struct PolicyResult {
  double success_1h = 0;
  double success_6h = 0;
  double mean_copies = 0;
};

PolicyResult evaluate(const TemporalGraph& g, ForwardingPolicy policy,
                      const ForwardingOptions& options, Rng& rng) {
  PolicyResult out;
  SummaryStats copies;
  const int messages = 300;
  int ok_1h = 0, ok_6h = 0;
  for (int m = 0; m < messages; ++m) {
    const auto src = static_cast<NodeId>(rng.below(g.num_nodes()));
    auto dst = static_cast<NodeId>(rng.below(g.num_nodes() - 1));
    if (dst >= src) ++dst;
    const double t0 =
        rng.uniform(g.start_time(), g.end_time() - 6 * kHour);
    const auto r = simulate_forwarding(g, src, dst, t0, policy, options);
    const double delay = r.delivery_time - t0;
    if (delay <= kHour) ++ok_1h;
    if (delay <= 6 * kHour) ++ok_6h;
    copies.add(r.copies);
  }
  out.success_1h = 100.0 * ok_1h / messages;
  out.success_6h = 100.0 * ok_6h / messages;
  out.mean_copies = copies.mean();
  return out;
}

}  // namespace

int main() {
  SyntheticTraceSpec spec;
  spec.name = "conference";
  spec.num_internal = 40;
  spec.duration = 3 * kDay;
  spec.pair_contacts_mean = 2.0;
  spec.num_communities = 4;
  spec.gatherings = {300.0, 0.35, 0.06, 12 * kMinute, 0.8, 0.06};
  spec.profile = ActivityProfile::conference();
  const auto trace = generate_trace(spec, 7777);
  std::printf("conference trace: %zu devices, %zu contacts over %s\n\n",
              trace.graph.num_nodes(), trace.graph.num_contacts(),
              format_duration(trace.graph.duration()).c_str());

  Rng rng(1);
  std::printf("%-28s %12s %12s %12s\n", "policy", "P[<=1h] %", "P[<=6h] %",
              "avg copies");

  // Baselines.
  for (auto policy : {ForwardingPolicy::kDirect,
                      ForwardingPolicy::kTwoHopRelay,
                      ForwardingPolicy::kSprayAndWait}) {
    Rng r2(42);  // same message workload for every policy
    const auto res = evaluate(trace.graph, policy, {}, r2);
    std::printf("%-28s %12.1f %12.1f %12.1f\n",
                forwarding_policy_name(policy), res.success_1h,
                res.success_6h, res.mean_copies);
  }

  // Epidemic with increasing hop TTL: the diameter shows up as a knee.
  for (int ttl : {1, 2, 3, 4, 5, 6, 8, 64}) {
    ForwardingOptions options;
    options.hop_ttl = ttl;
    Rng r2(42);
    const auto res =
        evaluate(trace.graph, ForwardingPolicy::kEpidemic, options, r2);
    char name[64];
    std::snprintf(name, sizeof name, "epidemic, hop TTL %d%s", ttl,
                  ttl == 64 ? " (~flooding)" : "");
    std::printf("%-28s %12.1f %12.1f %12.1f\n", name, res.success_1h,
                res.success_6h, res.mean_copies);
  }

  std::printf(
      "\nTakeaway: success saturates around TTL = 4-6 -- the network's\n"
      "diameter -- so a forwarding protocol can discard messages after a\n"
      "few hops at only a marginal performance cost (paper §7).\n");
  return 0;
}
