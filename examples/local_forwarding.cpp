// The price of locality (paper §7, second open problem).
//
// Short delay-optimal paths EXIST (the small diameter) -- but can a
// distributed algorithm using only local information find them? This
// example compares single-copy local forwarding rules against the
// delay-optimal oracle on a community-structured trace: success rates
// at several time scales and the mean delay inflation over the optimum.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <vector>

#include "core/optimal_paths.hpp"
#include "sim/local_forwarding.hpp"
#include "stats/summary.hpp"
#include "trace/generators.hpp"
#include "util/rng.hpp"
#include "util/time_format.hpp"

using namespace odtn;

namespace {

struct Workload {
  NodeId src, dst;
  double t0;
};

}  // namespace

int main() {
  SyntheticTraceSpec spec;
  spec.name = "campus";
  spec.num_internal = 30;
  spec.duration = 4 * kDay;
  spec.pair_contacts_mean = 1.0;
  spec.num_communities = 5;
  spec.intra_boost = 6.0;
  spec.gatherings = {120.0, 0.45, 0.06, 12 * kMinute, 1.0, 0.08};
  spec.profile = ActivityProfile::conference();
  const auto trace = generate_trace(spec, 20077);
  const auto& g = trace.graph;
  std::printf("trace: %zu devices, %zu contacts over %s\n\n", g.num_nodes(),
              g.num_contacts(), format_duration(g.duration()).c_str());

  // A fixed message workload, shared by every rule.
  Rng rng(5);
  std::vector<Workload> workload;
  for (int m = 0; m < 400; ++m) {
    const auto src = static_cast<NodeId>(rng.below(g.num_nodes()));
    auto dst = static_cast<NodeId>(rng.below(g.num_nodes() - 1));
    if (dst >= src) ++dst;
    workload.push_back(
        {src, dst, rng.uniform(g.start_time(), g.end_time() - 12 * kHour)});
  }

  // The oracle: delay-optimal delivery per message.
  std::vector<double> optimal(workload.size());
  {
    std::vector<int> order(g.num_nodes(), -1);
    for (NodeId src = 0; src < g.num_nodes(); ++src) {
      bool needed = false;
      for (const auto& w : workload) needed |= (w.src == src);
      if (!needed) continue;
      SingleSourceEngine engine(g, src);
      engine.run_to_fixpoint();
      for (std::size_t i = 0; i < workload.size(); ++i)
        if (workload[i].src == src)
          optimal[i] = engine.frontier_view(workload[i].dst)
                           .deliver_at(workload[i].t0);
    }
    (void)order;
  }

  std::printf("%-22s %10s %10s %10s %16s %10s\n", "rule", "P[<=1h]%",
              "P[<=6h]%", "P[<=1d]%", "delay vs optimal", "handoffs");
  SummaryStats oracle_delay;
  int oracle_1h = 0, oracle_6h = 0, oracle_1d = 0;
  for (std::size_t i = 0; i < workload.size(); ++i) {
    const double d = optimal[i] - workload[i].t0;
    if (d <= kHour) ++oracle_1h;
    if (d <= 6 * kHour) ++oracle_6h;
    if (d <= kDay) ++oracle_1d;
  }
  std::printf("%-22s %10.1f %10.1f %10.1f %16s %10s\n",
              "optimal path (oracle)",
              100.0 * oracle_1h / workload.size(),
              100.0 * oracle_6h / workload.size(),
              100.0 * oracle_1d / workload.size(), "1.00x", "-");

  for (auto rule : {LocalRule::kNone, LocalRule::kRandomWalk,
                    LocalRule::kMostActive,
                    LocalRule::kLastContactWithDestination,
                    LocalRule::kFrequencyGreedy}) {
    int ok_1h = 0, ok_6h = 0, ok_1d = 0;
    SummaryStats inflation, handoffs;
    for (std::size_t i = 0; i < workload.size(); ++i) {
      const auto out = simulate_local_forwarding(
          g, workload[i].src, workload[i].dst, workload[i].t0, rule, 64,
          /*seed=*/i + 1);
      const double d = out.delivery_time - workload[i].t0;
      if (d <= kHour) ++ok_1h;
      if (d <= 6 * kHour) ++ok_6h;
      if (d <= kDay) ++ok_1d;
      handoffs.add(out.handoffs);
      const double opt = optimal[i] - workload[i].t0;
      if (std::isfinite(d) && opt > 0.0) inflation.add(d / opt);
    }
    char ratio[32];
    std::snprintf(ratio, sizeof ratio, "%.2fx", inflation.mean());
    std::printf("%-22s %10.1f %10.1f %10.1f %16s %10.1f\n",
                local_rule_name(rule), 100.0 * ok_1h / workload.size(),
                100.0 * ok_6h / workload.size(),
                100.0 * ok_1d / workload.size(), ratio, handoffs.mean());
  }

  std::printf(
      "\nReading the table: short opportunistic paths exist (the oracle),\n"
      "and destination-aware local rules (last-contact, frequency-greedy)\n"
      "recover much of flooding's success with a single copy -- but a gap\n"
      "to the optimum remains: finding small-diameter paths with local\n"
      "information only is exactly the open problem the paper leaves\n"
      "(Kleinberg's navigability question, on temporal networks).\n");
  return 0;
}
