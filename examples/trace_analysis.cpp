// Trace analysis workflow: write a trace to disk, load it back, and
// produce a connectivity report -- the loop a researcher would run on
// their own contact trace (the odtn-trace format is one awk line away
// from the published Haggle/Reality-Mining contact lists).
//
// Usage: example_trace_analysis [trace-file]
//   Without an argument, generates a demo trace, saves it to a
//   temporary file, and analyzes that file.
#include <cstdio>
#include <string>

#include "core/diameter.hpp"
#include "core/optimal_paths.hpp"
#include "sim/flooding.hpp"
#include "stats/empirical.hpp"
#include "stats/log_grid.hpp"
#include "trace/generators.hpp"
#include "trace/trace_io.hpp"
#include "util/time_format.hpp"

using namespace odtn;

int main(int argc, char** argv) {
  std::string path;
  if (argc > 1) {
    path = argv[1];
  } else {
    // Demo: generate a campus-like trace and save it.
    SyntheticTraceSpec spec;
    spec.name = "campus-demo";
    spec.num_internal = 25;
    spec.duration = 7 * kDay;
    spec.granularity = 300.0;
    spec.pair_contacts_mean = 1.0;
    spec.num_communities = 5;
    spec.intra_boost = 6.0;
    spec.gatherings = {6.0, 0.8, 0.02, 45 * kMinute, 0.6, 0.0};
    spec.profile = ActivityProfile::campus();
    path = "campus_demo.trace";
    write_trace_file(path, generate_trace(spec, 99).graph);
    std::printf("generated demo trace -> %s\n", path.c_str());
  }

  const TemporalGraph g = read_trace_file(path);
  std::printf("\n=== trace report: %s ===\n", path.c_str());
  std::printf("devices:            %zu\n", g.num_nodes());
  std::printf("contacts:           %zu\n", g.num_contacts());
  std::printf("span:               %s\n",
              format_duration(g.duration()).c_str());
  std::printf("contact rate:       %.1f contacts/device/day\n",
              g.contact_rate(kDay));
  std::printf("connected pairs:    %zu of %zu\n", g.num_connected_pairs(),
              g.num_nodes() * (g.num_nodes() - 1) / 2);

  EmpiricalDistribution durations;
  for (double d : g.contact_durations()) durations.add(d);
  std::printf("median duration:    %s\n",
              format_duration(durations.quantile(0.5)).c_str());
  std::printf("p99 duration:       %s\n",
              format_duration(durations.quantile(0.99)).c_str());

  // Temporal reachability from node 0 at the trace start.
  const auto fr = flood(g, 0, g.start_time());
  std::size_t reached = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v)
    if (fr.best_arrival(v) < 1e300) ++reached;
  std::printf("reachable from 0:   %zu devices (flooding, unbounded time)\n",
              reached);

  // An explicit optimal route to the farthest reachable node.
  NodeId far = 0;
  for (NodeId v = 1; v < g.num_nodes(); ++v)
    if (fr.best_arrival(v) < 1e300 &&
        fr.best_arrival(v) >= fr.best_arrival(far))
      far = v;
  const auto route = fr.reconstruct(g, far, 64);
  std::printf("\nsample delay-optimal route 0 -> %u (%zu hops):\n", far,
              route.size());
  for (std::size_t idx : route) {
    const Contact& c = g.contacts()[idx];
    std::printf("  %u <-> %u during [%s, %s]\n", c.u, c.v,
                format_timestamp(c.begin).c_str(),
                format_timestamp(c.end).c_str());
  }

  // Diameter analysis.
  DelayCdfOptions opt;
  opt.grid = make_log_grid(2 * kMinute, g.duration(), 40);
  opt.max_hops = 12;
  const auto cdf = compute_delay_cdf(g, opt);
  std::printf("\nflooding success (any delay):  %.1f%%\n",
              100.0 * cdf.cdf_unbounded.back());
  std::printf("99%%-diameter:                  %d hops\n", cdf.diameter(0.01));
  std::printf("fixpoint (max useful hops):    %d\n", cdf.fixpoint_hops);
  return 0;
}
