// Quickstart: the odtn library in ~60 lines.
//
//  1. Build a temporal network from contacts.
//  2. Compute every delay-optimal path from a source (the (LD, EA)
//     Pareto frontiers of Chaintreau et al., CoNEXT 2007).
//  3. Query the delivery function: "if I create a message at time t,
//     when does it arrive?"
//  4. Compute the network's 99%-diameter.
#include <cstdio>

#include "core/diameter.hpp"
#include "core/optimal_paths.hpp"
#include "stats/log_grid.hpp"

using namespace odtn;

int main() {
  // A tiny opportunistic network: four devices, five contacts.
  // Node 0 never meets node 3 directly; data must flow over time
  // through relays 1 and 2.
  const TemporalGraph network(4, {
                                     {0, 1, 10.0, 30.0},  // 0 sees 1
                                     {1, 2, 25.0, 45.0},  // overlaps: chain!
                                     {2, 3, 60.0, 80.0},  // store & forward
                                     {0, 1, 100.0, 110.0},
                                     {1, 3, 120.0, 130.0},
                                 });

  // All delay-optimal paths from node 0, for every hop budget.
  SingleSourceEngine engine(network, /*source=*/0);
  engine.run_to_fixpoint();

  std::printf("Delay-optimal paths from node 0 to node 3:\n");
  const DeliveryFunction to3 = engine.frontier(3);
  for (const PathPair& p : to3.pairs()) {
    std::printf("  depart by t=%-5.0f -> arrive at t=%-5.0f (%s)\n", p.ld,
                p.ea,
                p.ea <= p.ld ? "contemporaneous" : "store-and-forward");
  }

  // The delivery function answers point queries.
  for (double t : {0.0, 50.0, 105.0, 125.0}) {
    const double arrival = to3.deliver_at(t);
    if (arrival < 1e300) {
      std::printf("message created at t=%-4.0f delivered at t=%-4.0f "
                  "(delay %.0f)\n",
                  t, arrival, arrival - t);
    } else {
      std::printf("message created at t=%-4.0f is never delivered\n", t);
    }
  }

  // The (1-eps)-diameter: hops needed to match 99% of flooding at every
  // time scale, over all pairs and all start times.
  DelayCdfOptions options;
  options.grid = make_log_grid(1.0, 200.0, 32);
  const DelayCdfResult cdf = compute_delay_cdf(network, options);
  std::printf("network diameter (99%% of flooding): %d hops\n",
              cdf.diameter(0.01));
  std::printf("no delay-optimal path uses more than %d hops\n",
              cdf.fixpoint_hops);
  return 0;
}
