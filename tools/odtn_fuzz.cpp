// Differential fuzzer for the optimal-path engine.
//
// Generates adversarial random traces (boundary coincidences, zero
// durations, nested/overlapping intervals, heavy tails) and cross-checks
// the Pareto-frontier engine against direct flooding at random and
// boundary start times, for bounded and unbounded hop budgets. Any
// mismatch prints a reproducer (the trace in odtn format) and exits 1.
//
// Usage: odtn_fuzz [trials] [base-seed]
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "core/optimal_paths.hpp"
#include "sim/flooding.hpp"
#include "trace/trace_io.hpp"
#include "util/rng.hpp"

using namespace odtn;

namespace {

TemporalGraph adversarial_trace(Rng& rng) {
  const std::size_t nodes = 3 + rng.below(12);
  const std::size_t count = 5 + rng.below(200);
  const double horizon = 20.0 + rng.uniform(0.0, 200.0);
  const bool integer_times = rng.bernoulli(0.5);
  std::vector<Contact> contacts;
  contacts.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const auto u = static_cast<NodeId>(rng.below(nodes));
    auto v = static_cast<NodeId>(rng.below(nodes - 1));
    if (v >= u) ++v;
    double begin = rng.uniform(0.0, horizon);
    double length;
    const double kind = rng.next_double();
    if (kind < 0.25) {
      length = 0.0;  // instantaneous
    } else if (kind < 0.5) {
      length = rng.uniform(0.0, 2.0);  // short
    } else if (kind < 0.9) {
      length = rng.uniform(0.0, horizon / 3.0);  // typical
    } else {
      length = rng.uniform(0.0, 3.0 * horizon);  // spans everything
    }
    if (integer_times) {
      begin = std::floor(begin);
      length = std::floor(length);
    }
    contacts.push_back({u, v, begin, begin + length});
  }
  return TemporalGraph(nodes, std::move(contacts));
}

[[noreturn]] void report_failure(const TemporalGraph& g, NodeId src,
                                 NodeId dst, double t0, int hops,
                                 double engine_value, double flood_value,
                                 std::uint64_t seed) {
  std::fprintf(stderr,
               "MISMATCH seed=%llu src=%u dst=%u t0=%.17g hops=%d "
               "engine=%.17g flooding=%.17g\nreproducer trace:\n",
               static_cast<unsigned long long>(seed), src, dst, t0, hops,
               engine_value, flood_value);
  std::ostringstream out;
  write_trace(out, g);
  std::fputs(out.str().c_str(), stderr);
  std::exit(1);
}

}  // namespace

int main(int argc, char** argv) {
  const long trials = argc > 1 ? std::strtol(argv[1], nullptr, 10) : 200;
  const auto base_seed = static_cast<std::uint64_t>(
      argc > 2 ? std::strtoll(argv[2], nullptr, 10) : 1);

  for (long trial = 0; trial < trials; ++trial) {
    const std::uint64_t seed = base_seed + static_cast<std::uint64_t>(trial);
    Rng rng(seed);
    const TemporalGraph g = adversarial_trace(rng);
    const auto src = static_cast<NodeId>(rng.below(g.num_nodes()));

    SingleSourceEngine engine(g, src);
    const int budget = 1 + static_cast<int>(rng.below(6));
    for (int k = 0; k < budget; ++k) engine.step();
    // Once the engine hits its fixpoint early, its frontiers equal
    // L_budget anyway, so the hop budget stays the comparison key.
    const int hops = budget;
    for (int q = 0; q < 30; ++q) {
      double t0;
      if (q % 3 == 0) {
        const Contact& c = g.contacts()[rng.below(g.num_contacts())];
        t0 = (q % 2 == 0) ? c.begin : c.end;
      } else {
        t0 = rng.uniform(-10.0, g.end_time() + 10.0);
      }
      const FloodingResult fr = flood(g, src, t0, hops);
      for (NodeId dst = 0; dst < g.num_nodes(); ++dst) {
        const double engine_value = engine.frontier(dst).deliver_at(t0);
        const double flood_value = fr.arrival_with_hops(dst, hops);
        if (engine_value != flood_value)
          report_failure(g, src, dst, t0, hops, engine_value, flood_value,
                         seed);
      }
    }

    // Fixpoint vs unbounded flooding.
    engine.run_to_fixpoint();
    const double t0 = rng.uniform(0.0, g.end_time());
    const FloodingResult fr = flood(g, src, t0);
    for (NodeId dst = 0; dst < g.num_nodes(); ++dst) {
      const double engine_value = engine.frontier(dst).deliver_at(t0);
      if (engine_value != fr.best_arrival(dst))
        report_failure(g, src, dst, t0, -1, engine_value,
                       fr.best_arrival(dst), seed);
    }
  }
  std::printf("odtn_fuzz: %ld trials passed (seeds %llu..%llu)\n", trials,
              static_cast<unsigned long long>(base_seed),
              static_cast<unsigned long long>(
                  base_seed + static_cast<std::uint64_t>(trials) - 1));
  return 0;
}
