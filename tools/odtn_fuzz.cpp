// Differential fuzzer for the optimal-path engine and the trace parser.
//
// Engine mode (default): generates adversarial random traces (boundary
// coincidences, zero durations, nested/overlapping intervals, heavy
// tails) and cross-checks the Pareto-frontier engine against direct
// flooding at random and boundary start times, for bounded and
// unbounded hop budgets. Any mismatch prints a reproducer (the trace in
// odtn format) and exits 1.
//
// Parser mode (--parser N): round-trips adversarial traces through
// write_trace -> read_trace, cross-checks the streaming parser against
// the seed line-stream parser (read_trace_reference) and the lenient /
// canonicalize modes against their contracts, then mutates the trace
// bytes and feeds the result to both parse modes — anything other than
// a clean TraceError (crash, sanitizer report, wrong exception) fails.
//
// Corpus mode (--corpus DIR): parses every file under DIR in strict,
// lenient, and canonicalize modes. Files named ok_* must parse strict
// cleanly; every other file must raise TraceError in strict mode.
// tools/verify.sh runs this under ASan+UBSan against tests/corpus.
//
// Kernel mode (--kernel N): differentials for the pooled engine's
// batched frontier kernels. Each trial (a) feeds a random mutated pair
// batch through prune_candidate_batch + merge_frontier and cross-checks
// the result bit for bit against DeliveryFunction::insert -- under
// EVERY CPU-supported SIMD dispatch level (util/simd.hpp), each of
// which must also match the scalar reference kernels bit for bit,
// together with the flat primitives (tail counts, equal-run scans,
// lower_bound4) on the same lanes -- and (b) runs the kPooled and
// kIndexed engines level by level over an adversarial trace requiring
// identical frontiers (exercising arena growth, span recycling via
// reset, and the free pre-change snapshots), rotating the forced
// dispatch level per trial; under ASan/UBSan this doubles as a bounds
// check on the arena spans and the vector loops.
//
// Shard mode (--shard N): differential of the sharded all-pairs driver
// (core/sharded_engine) against the classic compute_delay_cdf on
// adversarial traces with random shard counts, policies, hop budgets,
// grids, accumulation schemes and endpoint subsets. The comparison is
// bitwise (the canonical-fold contract), and every sharded run
// round-trips the ShardRequest / ShardResult byte encodings.
//
// Batch mode (--batch N): differential of the batched multi-source
// driver (core/batched_engine, source_batch > 1) against the per-source
// one -- random batch sizes including ones past the source count, random
// endpoint subsets, occasionally composed with the sharded driver. The
// comparison is bitwise, including the additive engine counters.
//
// Snapshot mode (--snapshot N): round-trips the binary snapshot codec
// (bit-identical re-encode, engine equivalence of the mmap-style view),
// rejects every truncation prefix / trailing byte / bad magic+version,
// and checks that random bit flips either raise SnapshotError or decode
// to a graph that is safe to run and re-encodes to the same bytes.
//
// Live mode (--live N): differentials for the live-ingestion path.
// Each trial splits an adversarial trace into a random number of append
// epochs, runs them through IncrementalAllPairsEngine, and requires
// every epoch's all_pairs() to be bit-identical to a cold
// compute_delay_cdf(kDirect) on the prefix ingested so far (over the
// same explicit full-span start window). It also replays the trace's
// byte serialization through StreamingTraceParser under random chunk
// splits -- sometimes one byte at a time, sometimes with the final
// newline stripped so the flush() path runs -- and requires the result
// to match the one-shot read_trace graph exactly.
//
// Usage: odtn_fuzz [--engine N] [--parser N] [--kernel N] [--shard N]
//                  [--batch N] [--snapshot N] [--live N] [--corpus DIR]
//                  [--seed S]
//        odtn_fuzz [trials] [base-seed]        (legacy: engine mode)
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>
#include <memory>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "core/diameter.hpp"
#include "core/frontier_kernels.hpp"
#include "core/incremental_engine.hpp"
#include "core/optimal_paths.hpp"
#include "core/partition.hpp"
#include "sim/flooding.hpp"
#include "stats/log_grid.hpp"
#include "trace/snapshot.hpp"
#include "trace/trace_io.hpp"
#include "util/rng.hpp"
#include "util/simd.hpp"

using namespace odtn;

namespace {

TemporalGraph adversarial_trace(Rng& rng) {
  const std::size_t nodes = 3 + rng.below(12);
  const std::size_t count = 5 + rng.below(200);
  const double horizon = 20.0 + rng.uniform(0.0, 200.0);
  const bool integer_times = rng.bernoulli(0.5);
  std::vector<Contact> contacts;
  contacts.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const auto u = static_cast<NodeId>(rng.below(nodes));
    auto v = static_cast<NodeId>(rng.below(nodes - 1));
    if (v >= u) ++v;
    double begin = rng.uniform(0.0, horizon);
    double length;
    const double kind = rng.next_double();
    if (kind < 0.25) {
      length = 0.0;  // instantaneous
    } else if (kind < 0.5) {
      length = rng.uniform(0.0, 2.0);  // short
    } else if (kind < 0.9) {
      length = rng.uniform(0.0, horizon / 3.0);  // typical
    } else {
      length = rng.uniform(0.0, 3.0 * horizon);  // spans everything
    }
    if (integer_times) {
      begin = std::floor(begin);
      length = std::floor(length);
    }
    contacts.push_back({u, v, begin, begin + length});
  }
  return TemporalGraph(nodes, std::move(contacts));
}

[[noreturn]] void report_failure(const TemporalGraph& g, NodeId src,
                                 NodeId dst, double t0, int hops,
                                 double engine_value, double flood_value,
                                 std::uint64_t seed) {
  std::fprintf(stderr,
               "MISMATCH seed=%llu src=%u dst=%u t0=%.17g hops=%d "
               "engine=%.17g flooding=%.17g\nreproducer trace:\n",
               static_cast<unsigned long long>(seed), src, dst, t0, hops,
               engine_value, flood_value);
  std::ostringstream out;
  write_trace(out, g);
  std::fputs(out.str().c_str(), stderr);
  std::exit(1);
}

int engine_trials(long trials, std::uint64_t base_seed) {
  for (long trial = 0; trial < trials; ++trial) {
    const std::uint64_t seed = base_seed + static_cast<std::uint64_t>(trial);
    Rng rng(seed);
    const TemporalGraph g = adversarial_trace(rng);
    const auto src = static_cast<NodeId>(rng.below(g.num_nodes()));

    SingleSourceEngine engine(g, src);
    const int budget = 1 + static_cast<int>(rng.below(6));
    for (int k = 0; k < budget; ++k) engine.step();
    // Once the engine hits its fixpoint early, its frontiers equal
    // L_budget anyway, so the hop budget stays the comparison key.
    const int hops = budget;
    for (int q = 0; q < 30; ++q) {
      double t0;
      if (q % 3 == 0) {
        const Contact& c = g.contacts()[rng.below(g.num_contacts())];
        t0 = (q % 2 == 0) ? c.begin : c.end;
      } else {
        t0 = rng.uniform(-10.0, g.end_time() + 10.0);
      }
      const FloodingResult fr = flood(g, src, t0, hops);
      for (NodeId dst = 0; dst < g.num_nodes(); ++dst) {
        const double engine_value = engine.frontier(dst).deliver_at(t0);
        const double flood_value = fr.arrival_with_hops(dst, hops);
        if (engine_value != flood_value)
          report_failure(g, src, dst, t0, hops, engine_value, flood_value,
                         seed);
      }
    }

    // Fixpoint vs unbounded flooding.
    engine.run_to_fixpoint();
    const double t0 = rng.uniform(0.0, g.end_time());
    const FloodingResult fr = flood(g, src, t0);
    for (NodeId dst = 0; dst < g.num_nodes(); ++dst) {
      const double engine_value = engine.frontier(dst).deliver_at(t0);
      if (engine_value != fr.best_arrival(dst))
        report_failure(g, src, dst, t0, -1, engine_value,
                       fr.best_arrival(dst), seed);
    }
  }
  std::printf("odtn_fuzz: %ld engine trials passed (seeds %llu..%llu)\n",
              trials, static_cast<unsigned long long>(base_seed),
              static_cast<unsigned long long>(
                  base_seed + static_cast<std::uint64_t>(trials) - 1));
  return 0;
}

bool graphs_identical(const TemporalGraph& a, const TemporalGraph& b) {
  return a.num_nodes() == b.num_nodes() && a.directed() == b.directed() &&
         std::ranges::equal(a.contacts(), b.contacts());
}

[[noreturn]] void parser_failure(const char* what, std::uint64_t seed,
                                 const std::string& text) {
  std::fprintf(stderr, "PARSER MISMATCH seed=%llu: %s\ninput:\n%s\n",
               static_cast<unsigned long long>(seed), what, text.c_str());
  std::exit(1);
}

/// Random byte-level mutation: replace, insert, or delete, biased
/// toward bytes the trace grammar cares about.
std::string mutate(std::string text, Rng& rng) {
  static const char kAlphabet[] = "0123456789 \t\n\r#.-+eEvinfa\0x";
  const std::size_t edits = 1 + rng.below(8);
  for (std::size_t i = 0; i < edits && !text.empty(); ++i) {
    const std::size_t pos = rng.below(text.size());
    const char byte = kAlphabet[rng.below(sizeof kAlphabet - 1)];
    switch (rng.below(4)) {
      case 0: text[pos] = byte; break;
      case 1: text.insert(text.begin() + static_cast<long>(pos), byte); break;
      case 2: text.erase(text.begin() + static_cast<long>(pos)); break;
      default: text.resize(pos); break;  // truncate
    }
  }
  return text;
}

int parser_trials(long trials, std::uint64_t base_seed) {
  for (long trial = 0; trial < trials; ++trial) {
    const std::uint64_t seed = base_seed + static_cast<std::uint64_t>(trial);
    Rng rng(seed);
    TemporalGraph original = adversarial_trace(rng);
    if (rng.bernoulli(0.25))
      original = TemporalGraph(original.num_nodes(),
                               original.contacts_vector(),
                               /*directed=*/true);
    std::ostringstream out;
    write_trace(out, original);
    const std::string text = out.str();

    // Round trip: the streaming parser, the seed reference parser, and
    // lenient mode must all reproduce the graph bit-identically.
    {
      std::istringstream in(text);
      const TemporalGraph fast = read_trace(in);
      if (!graphs_identical(fast, original))
        parser_failure("strict round-trip diverged from original", seed, text);
      std::istringstream in_ref(text);
      const TemporalGraph ref = read_trace_reference(in_ref);
      if (!graphs_identical(fast, ref))
        parser_failure("streaming parser diverged from reference", seed,
                       text);
      std::istringstream in_len(text);
      ParseReport report;
      const TemporalGraph lenient =
          read_trace(in_len, {ParseMode::kLenient, false, 64}, &report);
      if (!graphs_identical(lenient, original) || report.skipped != 0)
        parser_failure("lenient mode skipped records of a valid trace", seed,
                       text);
    }

    // Canonicalize contract: equals merge_overlapping_contacts applied
    // to the original contacts.
    {
      std::istringstream in(text);
      ParseReport report;
      const TemporalGraph canon =
          read_trace(in, {ParseMode::kStrict, true, 64}, &report);
      const TemporalGraph expected(
          original.num_nodes(),
          merge_overlapping_contacts(original.contacts_vector()),
          original.directed());
      if (!graphs_identical(canon, expected))
        parser_failure("canonicalize diverged from merge_overlapping_contacts",
                       seed, text);
      if (report.contacts + report.merged != original.num_contacts())
        parser_failure("canonicalize merge accounting is inconsistent", seed,
                       text);
    }

    // Mutated input: both modes must either parse or raise TraceError —
    // never crash, never leak another exception type. If strict
    // succeeds, lenient must agree exactly and skip nothing.
    const std::string broken = mutate(text, rng);
    bool strict_ok = false;
    TemporalGraph strict_graph(0, {});
    try {
      std::istringstream in(broken);
      strict_graph = read_trace(in);
      strict_ok = true;
    } catch (const TraceError&) {
    }
    try {
      std::istringstream in(broken);
      ParseReport report;
      const TemporalGraph lenient =
          read_trace(in, {ParseMode::kLenient, rng.bernoulli(0.5), 64},
                     &report);
      if (strict_ok && !report.canonicalized &&
          (!graphs_identical(lenient, strict_graph) || report.skipped != 0))
        parser_failure("strict-accepted input but lenient diverged", seed,
                       broken);
    } catch (const TraceError&) {
      if (strict_ok)
        parser_failure("strict-accepted input but lenient threw", seed,
                       broken);
    }
  }
  std::printf("odtn_fuzz: %ld parser trials passed (seeds %llu..%llu)\n",
              trials, static_cast<unsigned long long>(base_seed),
              static_cast<unsigned long long>(
                  base_seed + static_cast<std::uint64_t>(trials) - 1));
  return 0;
}

[[noreturn]] void kernel_failure(const char* what, std::uint64_t seed) {
  std::fprintf(stderr, "KERNEL MISMATCH seed=%llu: %s\n",
               static_cast<unsigned long long>(seed), what);
  std::exit(1);
}

/// Random pair with quantized coordinates so exact duplicates, equal-LD
/// ties, and long dominance chains all occur; occasionally infinite
/// coordinates (the identity pair's regime).
PathPair random_kernel_pair(Rng& rng) {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  if (rng.bernoulli(0.02)) return {kInf, -kInf};
  const double scale = rng.bernoulli(0.2) ? 1.0 : 4.0;
  return {std::floor(rng.uniform(0.0, 20.0 * scale)) / scale,
          std::floor(rng.uniform(-10.0, 20.0 * scale)) / scale};
}

/// Bitwise lane equality (distinguishes +0.0 from -0.0, unlike ==).
bool lanes_bitwise_equal(const double* a, const double* b, std::size_t n) {
  return n == 0 || std::memcmp(a, b, n * sizeof(double)) == 0;
}

int kernel_trials(long trials, std::uint64_t base_seed) {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  // Dispatch levels under test: scalar up to the ENTRY level, so a
  // forced-scalar run (ODTN_SIMD=scalar, used by the sanitizer tier of
  // tools/verify.sh and CI) genuinely stays scalar, while a default run
  // sweeps every CPU-supported vector variant against the scalar
  // reference.
  const simd::Level entry = simd::active_level();
  std::vector<simd::Level> levels;
  for (const simd::Level l :
       {simd::Level::kScalar, simd::Level::kSse42, simd::Level::kAvx2})
    if (static_cast<int>(l) <= static_cast<int>(entry) && simd::cpu_supports(l))
      levels.push_back(l);
  const simd::Ops& sops = simd::ops_for(simd::Level::kScalar);

  for (long trial = 0; trial < trials; ++trial) {
    const std::uint64_t seed = base_seed + static_cast<std::uint64_t>(trial);
    Rng rng(seed);

    // (a) Kernel differential: scalar prune + merge vs insert() bit for
    // bit, then every dispatched level vs the scalar result bit for bit.
    DeliveryFunction base;
    const std::size_t warm = rng.below(40);
    for (std::size_t i = 0; i < warm; ++i)
      base.insert(random_kernel_pair(rng));
    std::vector<double> f_ld, f_ea;
    for (const PathPair& p : base.pairs()) {
      f_ld.push_back(p.ld);
      f_ea.push_back(p.ea);
    }
    std::vector<PathPair> raw_batch;
    const std::size_t raw = rng.below(24);
    for (std::size_t i = 0; i < raw; ++i) {
      if (!base.empty() && rng.bernoulli(0.25))
        raw_batch.push_back(base.pairs()[rng.below(base.size())]);  // dup
      else if (!raw_batch.empty() && rng.bernoulli(0.2))
        raw_batch.push_back(raw_batch[rng.below(raw_batch.size())]);  // rep
      else
        raw_batch.push_back(random_kernel_pair(rng));
    }
    std::vector<PathPair> batch = raw_batch;
    const std::size_t m =
        prune_candidate_batch_scalar(batch.data(), batch.size());
    batch.resize(m);
    DeliveryFunction ref = base;
    for (const PathPair& p : batch) ref.insert(p);

    const std::size_t fn = base.size();
    std::vector<double> out_ld(fn + m), out_ea(fn + m);
    std::vector<double> d_ld(m), d_ea(m), d_succ(m);
    const FrontierMerge r = merge_frontier_scalar(
        f_ld.data(), f_ea.data(), fn, batch.data(), m, out_ld.data(),
        out_ea.data(), d_ld.data(), d_ea.data(), d_succ.data());
    if (r.kept != ref.size())
      kernel_failure("merged frontier size diverged from insert()", seed);
    const std::size_t off = fn + m - r.kept;
    for (std::size_t i = 0; i < r.kept; ++i)
      if (out_ld[off + i] != ref.pairs()[i].ld ||
          out_ea[off + i] != ref.pairs()[i].ea)
        kernel_failure("merged frontier pair diverged from insert()", seed);
    const std::size_t doff = m - r.kept_new;
    for (std::size_t i = 0; i < r.kept_new; ++i) {
      const PathPair p{d_ld[doff + i], d_ea[doff + i]};
      const auto it = std::find(ref.pairs().begin(), ref.pairs().end(), p);
      if (it == ref.pairs().end())
        kernel_failure("delta pair is not on the merged frontier", seed);
      if (std::find(base.pairs().begin(), base.pairs().end(), p) !=
          base.pairs().end())
        kernel_failure("delta pair already existed in the base frontier",
                       seed);
      const double succ = (it + 1 == ref.pairs().end()) ? kInf : (it + 1)->ea;
      if (d_succ[doff + i] != succ)
        kernel_failure("delta successor EA diverged", seed);
    }

    // Random inputs for the flat-primitive differentials: a sorted grid
    // with duplicates plus keys that hit grid values and +/-infinity.
    std::vector<double> grid(rng.below(70));
    for (double& gv : grid) gv = std::floor(rng.uniform(-8.0, 60.0)) / 2.0;
    std::sort(grid.begin(), grid.end());
    double keys[4];
    for (double& k : keys) {
      const double kind = rng.next_double();
      if (kind < 0.15 && !grid.empty())
        k = grid[rng.below(grid.size())];
      else if (kind < 0.2)
        k = rng.bernoulli(0.5) ? kInf : -kInf;
      else
        k = rng.uniform(-10.0, 62.0);
    }
    // Mutated copies of the frontier lanes for the equal-run scans.
    std::vector<double> g_ld = f_ld, g_ea = f_ea;
    if (fn > 0 && rng.bernoulli(0.7)) {
      const std::size_t at = rng.below(fn);
      if (rng.bernoulli(0.5))
        g_ld[at] += 1.0;
      else
        g_ea[at] = -g_ea[at];  // may flip a zero's sign: value-equal
    }
    const double bound = rng.bernoulli(0.3) && fn > 0
                             ? f_ea[rng.below(fn)]
                             : std::floor(rng.uniform(-12.0, 22.0));

    for (const simd::Level level : levels) {
      if (!simd::set_level(level))
        kernel_failure("set_level refused a CPU-supported level", seed);

      // Dispatched prune must reproduce the scalar prune bit for bit.
      std::vector<PathPair> vb = raw_batch;
      const std::size_t vm = prune_candidate_batch(vb.data(), vb.size());
      if (vm != m)
        kernel_failure("dispatched prune kept-count diverged from scalar",
                       seed);
      if (m > 0 && std::memcmp(vb.data(), batch.data(),
                               m * sizeof(PathPair)) != 0)
        kernel_failure("dispatched prune output diverged from scalar", seed);

      // Dispatched merge must reproduce the scalar merge bit for bit.
      std::vector<double> v_out_ld(fn + m), v_out_ea(fn + m);
      std::vector<double> v_d_ld(m), v_d_ea(m), v_d_succ(m);
      const FrontierMerge vr = merge_frontier(
          f_ld.data(), f_ea.data(), fn, batch.data(), m, v_out_ld.data(),
          v_out_ea.data(), v_d_ld.data(), v_d_ea.data(), v_d_succ.data());
      if (vr.kept != r.kept || vr.kept_new != r.kept_new)
        kernel_failure("dispatched merge counts diverged from scalar", seed);
      if (!lanes_bitwise_equal(v_out_ld.data() + off, out_ld.data() + off,
                               r.kept) ||
          !lanes_bitwise_equal(v_out_ea.data() + off, out_ea.data() + off,
                               r.kept))
        kernel_failure("dispatched merge lanes diverged from scalar", seed);
      if (!lanes_bitwise_equal(v_d_ld.data() + doff, d_ld.data() + doff,
                               r.kept_new) ||
          !lanes_bitwise_equal(v_d_ea.data() + doff, d_ea.data() + doff,
                               r.kept_new) ||
          !lanes_bitwise_equal(v_d_succ.data() + doff, d_succ.data() + doff,
                               r.kept_new))
        kernel_failure("dispatched merge delta diverged from scalar", seed);

      // Flat primitives against the scalar table on the same inputs.
      const simd::Ops& vops = simd::ops_for(level);
      if (vops.count_tail_ge(f_ea.data(), fn, bound) !=
          sops.count_tail_ge(f_ea.data(), fn, bound))
        kernel_failure("count_tail_ge diverged from scalar", seed);
      if (!raw_batch.empty() &&
          vops.count_tail_ge_stride2(&raw_batch[0].ea, raw_batch.size(),
                                     bound) !=
              sops.count_tail_ge_stride2(&raw_batch[0].ea, raw_batch.size(),
                                         bound))
        kernel_failure("count_tail_ge_stride2 diverged from scalar", seed);
      if (vops.equal_prefix2(f_ld.data(), f_ea.data(), g_ld.data(),
                             g_ea.data(), fn) !=
          sops.equal_prefix2(f_ld.data(), f_ea.data(), g_ld.data(),
                             g_ea.data(), fn))
        kernel_failure("equal_prefix2 diverged from scalar", seed);
      if (vops.equal_suffix2(f_ld.data(), f_ea.data(), fn, g_ld.data(),
                             g_ea.data(), fn, fn) !=
          sops.equal_suffix2(f_ld.data(), f_ea.data(), fn, g_ld.data(),
                             g_ea.data(), fn, fn))
        kernel_failure("equal_suffix2 diverged from scalar", seed);
      std::uint32_t idx_v[4], idx_s[4];
      vops.lower_bound4(grid.data(), grid.size(), keys, idx_v);
      sops.lower_bound4(grid.data(), grid.size(), keys, idx_s);
      if (std::memcmp(idx_v, idx_s, sizeof idx_v) != 0)
        kernel_failure("lower_bound4 diverged from scalar", seed);
    }

    // (b) Engine differential: kPooled vs kIndexed level by level on an
    // adversarial trace, then once more after reset() onto a new source
    // (exercising span recycling on warmed arenas). The forced dispatch
    // level rotates per trial so the full engine path (merge, diff-trim,
    // CDF integration) is exercised at every level across a run.
    simd::set_level(levels[static_cast<std::size_t>(trial) % levels.size()]);
    TemporalGraph g = adversarial_trace(rng);
    if (rng.bernoulli(0.3))
      g = TemporalGraph(g.num_nodes(), g.contacts_vector(),
                        /*directed=*/true);
    const auto src = static_cast<NodeId>(rng.below(g.num_nodes()));
    SingleSourceEngine pooled(g, src, EngineMode::kPooled);
    auto crosscheck_from = [&](NodeId s) {
      SingleSourceEngine indexed(g, s, EngineMode::kIndexed);
      for (int level = 1; level <= 64; ++level) {
        const bool p_grew = pooled.step();
        const bool i_grew = indexed.step();
        if (p_grew != i_grew)
          kernel_failure("pooled and indexed disagree on progress", seed);
        for (NodeId dst = 0; dst < g.num_nodes(); ++dst)
          if (pooled.frontier(dst) != indexed.frontier(dst)) {
            report_failure(g, s, dst, 0.0, level,
                           static_cast<double>(pooled.frontier(dst).size()),
                           static_cast<double>(indexed.frontier(dst).size()),
                           seed);
          }
        if (!p_grew) break;
      }
      if (!pooled.at_fixpoint())
        kernel_failure("pooled engine did not reach its fixpoint", seed);
    };
    crosscheck_from(src);
    const auto src2 = static_cast<NodeId>(rng.below(g.num_nodes()));
    pooled.reset(src2);
    crosscheck_from(src2);
    if (pooled.stats().workspace_allocations != 1)
      kernel_failure("pooled reset() re-allocated its workspace", seed);
  }
  simd::set_level(entry);
  std::string level_names;
  for (const simd::Level l : levels) {
    if (!level_names.empty()) level_names += ",";
    level_names += simd::level_name(l);
  }
  std::printf(
      "odtn_fuzz: %ld kernel trials passed (seeds %llu..%llu, simd %s)\n",
      trials, static_cast<unsigned long long>(base_seed),
      static_cast<unsigned long long>(
          base_seed + static_cast<std::uint64_t>(trials) - 1),
      level_names.c_str());
  return 0;
}

[[noreturn]] void shard_failure(const char* what, const TemporalGraph& g,
                                std::size_t shards, int policy,
                                std::uint64_t seed) {
  std::fprintf(stderr,
               "SHARD MISMATCH seed=%llu shards=%zu policy=%d: %s\n"
               "reproducer trace:\n",
               static_cast<unsigned long long>(seed), shards, policy, what);
  std::ostringstream out;
  write_trace(out, g);
  std::fputs(out.str().c_str(), stderr);
  std::exit(1);
}

/// Shard mode (--shard N): differential of the sharded all-pairs driver
/// against the classic one on adversarial traces -- random shard count,
/// policy, directedness, hop budget, grid, accumulation scheme and
/// endpoint subset per trial. The contract is BIT-identity (the
/// canonical fold), so every comparison is ==, never a tolerance; each
/// sharded run also round-trips the ShardRequest/ShardResult byte
/// encodings, fuzzing the wire format with real payloads.
int shard_trials(long trials, std::uint64_t base_seed) {
  for (long trial = 0; trial < trials; ++trial) {
    const std::uint64_t seed = base_seed + static_cast<std::uint64_t>(trial);
    Rng rng(seed);
    TemporalGraph g = adversarial_trace(rng);
    if (rng.bernoulli(0.3))
      g = TemporalGraph(g.num_nodes(), g.contacts_vector(),
                        /*directed=*/true);

    DelayCdfOptions opt;
    opt.grid = make_log_grid(0.5, 400.0, 8 + rng.below(17));
    opt.max_hops = 1 + static_cast<int>(rng.below(6));
    opt.num_threads = 1;
    if (rng.bernoulli(0.25))
      opt.accumulation = CdfAccumulation::kDirect;
    if (rng.bernoulli(0.3)) {
      // Random endpoint subset of >= 2 nodes.
      for (NodeId n = 0; n < g.num_nodes(); ++n)
        if (rng.bernoulli(0.6)) opt.endpoints.push_back(n);
      while (opt.endpoints.size() < 2) {
        const auto n = static_cast<NodeId>(rng.below(g.num_nodes()));
        if (std::find(opt.endpoints.begin(), opt.endpoints.end(), n) ==
            opt.endpoints.end())
          opt.endpoints.push_back(n);
      }
      std::sort(opt.endpoints.begin(), opt.endpoints.end());
    }

    const std::size_t shards = 1 + rng.below(6);
    const auto policy = static_cast<ShardPolicy>(rng.below(3));
    const DelayCdfResult a = compute_delay_cdf(g, opt);
    opt.sharding.num_shards = shards;
    opt.sharding.policy = policy;
    const DelayCdfResult b = compute_delay_cdf(g, opt);

    const int p = static_cast<int>(policy);
    if (a.cdf_by_hops != b.cdf_by_hops)
      shard_failure("cdf_by_hops diverged", g, shards, p, seed);
    if (a.cdf_unbounded != b.cdf_unbounded)
      shard_failure("cdf_unbounded diverged", g, shards, p, seed);
    if (a.fixpoint_hops != b.fixpoint_hops)
      shard_failure("fixpoint_hops diverged", g, shards, p, seed);
    if (a.converged != b.converged)
      shard_failure("converged flag diverged", g, shards, p, seed);
    if (a.denominator != b.denominator)
      shard_failure("denominator diverged", g, shards, p, seed);
    if (a.diameter(0.01) != b.diameter(0.01) ||
        a.diameter_absolute(0.01) != b.diameter_absolute(0.01))
      shard_failure("diameter diverged", g, shards, p, seed);
    if (a.stats.cdf_pairs_integrated != b.stats.cdf_pairs_integrated ||
        a.stats.contacts_examined != b.stats.contacts_examined ||
        a.stats.pairs_inserted != b.stats.pairs_inserted)
      shard_failure("additive engine counters diverged", g, shards, p, seed);
  }
  std::printf("odtn_fuzz: %ld shard trials passed (seeds %llu..%llu)\n",
              trials, static_cast<unsigned long long>(base_seed),
              static_cast<unsigned long long>(
                  base_seed + static_cast<std::uint64_t>(trials) - 1));
  return 0;
}

[[noreturn]] void batch_failure(const char* what, const TemporalGraph& g,
                                int batch, std::size_t shards,
                                std::uint64_t seed) {
  std::fprintf(stderr,
               "BATCH MISMATCH seed=%llu batch=%d shards=%zu: %s\n"
               "reproducer trace:\n",
               static_cast<unsigned long long>(seed), batch, shards, what);
  std::ostringstream out;
  write_trace(out, g);
  std::fputs(out.str().c_str(), stderr);
  std::exit(1);
}

/// Batch mode (--batch N): differential of the batched multi-source
/// driver (source_batch > 1) against the per-source one on adversarial
/// traces -- random batch size (occasionally larger than the source
/// count, exercising the clamp), directedness, hop budget, grid and
/// endpoint subset per trial, and occasionally composed with the
/// sharded driver so the wire-carried source_batch is fuzzed with real
/// payloads too. Accumulation stays kAuto (batching requires the
/// incremental scheme; the kDirect combination is a tested hard error,
/// not a fuzz target). The contract is BIT-identity at every batch
/// size, so every comparison is ==, never a tolerance.
int batch_trials(long trials, std::uint64_t base_seed) {
  for (long trial = 0; trial < trials; ++trial) {
    const std::uint64_t seed = base_seed + static_cast<std::uint64_t>(trial);
    Rng rng(seed);
    TemporalGraph g = adversarial_trace(rng);
    if (rng.bernoulli(0.3))
      g = TemporalGraph(g.num_nodes(), g.contacts_vector(),
                        /*directed=*/true);

    DelayCdfOptions opt;
    opt.grid = make_log_grid(0.5, 400.0, 8 + rng.below(17));
    opt.max_hops = 1 + static_cast<int>(rng.below(6));
    opt.num_threads = 1;
    if (rng.bernoulli(0.3)) {
      // Random endpoint subset of >= 2 nodes.
      for (NodeId n = 0; n < g.num_nodes(); ++n)
        if (rng.bernoulli(0.6)) opt.endpoints.push_back(n);
      while (opt.endpoints.size() < 2) {
        const auto n = static_cast<NodeId>(rng.below(g.num_nodes()));
        if (std::find(opt.endpoints.begin(), opt.endpoints.end(), n) ==
            opt.endpoints.end())
          opt.endpoints.push_back(n);
      }
      std::sort(opt.endpoints.begin(), opt.endpoints.end());
    }

    const DelayCdfResult a = compute_delay_cdf(g, opt);
    const int batch =
        rng.bernoulli(0.15)
            ? static_cast<int>(g.num_nodes() + 1 + rng.below(40))
            : static_cast<int>(2 + rng.below(7));
    opt.source_batch = batch;
    std::size_t shards = 0;
    if (rng.bernoulli(0.25)) {
      shards = 1 + rng.below(4);
      opt.sharding.num_shards = shards;
      opt.sharding.policy = static_cast<ShardPolicy>(rng.below(3));
    }
    const DelayCdfResult b = compute_delay_cdf(g, opt);

    if (a.cdf_by_hops != b.cdf_by_hops)
      batch_failure("cdf_by_hops diverged", g, batch, shards, seed);
    if (a.cdf_unbounded != b.cdf_unbounded)
      batch_failure("cdf_unbounded diverged", g, batch, shards, seed);
    if (a.fixpoint_hops != b.fixpoint_hops)
      batch_failure("fixpoint_hops diverged", g, batch, shards, seed);
    if (a.converged != b.converged)
      batch_failure("converged flag diverged", g, batch, shards, seed);
    if (a.denominator != b.denominator)
      batch_failure("denominator diverged", g, batch, shards, seed);
    if (a.diameter(0.01) != b.diameter(0.01) ||
        a.diameter_absolute(0.01) != b.diameter_absolute(0.01))
      batch_failure("diameter diverged", g, batch, shards, seed);
    if (a.stats.cdf_pairs_integrated != b.stats.cdf_pairs_integrated ||
        a.stats.contacts_examined != b.stats.contacts_examined ||
        a.stats.pairs_inserted != b.stats.pairs_inserted ||
        a.stats.pairs_dominated != b.stats.pairs_dominated ||
        a.stats.merge_batches != b.stats.merge_batches)
      batch_failure("additive engine counters diverged", g, batch, shards,
                    seed);
  }
  std::printf("odtn_fuzz: %ld batch trials passed (seeds %llu..%llu)\n",
              trials, static_cast<unsigned long long>(base_seed),
              static_cast<unsigned long long>(
                  base_seed + static_cast<std::uint64_t>(trials) - 1));
  return 0;
}

[[noreturn]] void snapshot_failure(const char* what, const TemporalGraph& g,
                                   std::uint64_t seed) {
  std::fprintf(stderr, "SNAPSHOT MISMATCH seed=%llu: %s\nreproducer trace:\n",
               static_cast<unsigned long long>(seed), what);
  std::ostringstream out;
  write_trace(out, g);
  std::fputs(out.str().c_str(), stderr);
  std::exit(1);
}

/// Snapshot mode (--snapshot N): the binary snapshot codec
/// (trace/snapshot.hpp) against its three contracts.
///   1. Round trip: decode(encode(g)) reproduces the graph AND
///      re-encodes to the identical bytes; an all-pairs run on the
///      zero-copy view is bit-identical to one on the owned graph.
///   2. Framing: every strict prefix of a valid snapshot, a trailing
///      byte, and a corrupted magic/version all raise SnapshotError.
///   3. Bit flips: a random single-bit corruption either raises
///      SnapshotError or yields a graph safe to run an engine on
///      (sanitizer builds catch anything the validator let through);
///      when it decodes, re-encoding must reproduce the mutated buffer
///      (decode accepts canonical layouts only).
int snapshot_trials(long trials, std::uint64_t base_seed) {
  for (long trial = 0; trial < trials; ++trial) {
    const std::uint64_t seed = base_seed + static_cast<std::uint64_t>(trial);
    Rng rng(seed);
    TemporalGraph g = adversarial_trace(rng);
    if (rng.bernoulli(0.3))
      g = TemporalGraph(g.num_nodes(), g.contacts_vector(),
                        /*directed=*/true);
    const std::vector<std::uint8_t> bytes = encode_snapshot(g);

    TemporalGraph view = decode_snapshot(
        std::make_shared<const std::vector<std::uint8_t>>(bytes));
    if (!graphs_identical(g, view) || !view.is_view() ||
        view.start_time() != g.start_time() ||
        view.end_time() != g.end_time())
      snapshot_failure("decoded view disagrees with source graph", g, seed);
    if (encode_snapshot(view) != bytes)
      snapshot_failure("re-encode of decoded view not bit-identical", g,
                       seed);

    DelayCdfOptions opt;
    opt.grid = make_log_grid(0.5, 400.0, 8);
    opt.max_hops = 1 + static_cast<int>(rng.below(4));
    opt.num_threads = 1;
    const DelayCdfResult owned = compute_delay_cdf(g, opt);
    const DelayCdfResult mapped = compute_delay_cdf(view, opt);
    if (owned.cdf_by_hops != mapped.cdf_by_hops ||
        owned.cdf_unbounded != mapped.cdf_unbounded ||
        owned.denominator != mapped.denominator)
      snapshot_failure("all-pairs on the view diverged from the owned graph",
                       g, seed);

    const auto expect_reject = [&](const std::uint8_t* data, std::size_t size,
                                   const char* what) {
      try {
        (void)decode_snapshot(data, size, nullptr);
      } catch (const SnapshotError&) {
        return;
      }
      snapshot_failure(what, g, seed);
    };
    for (std::size_t len = 0; len < bytes.size(); ++len)
      expect_reject(bytes.data(), len, "truncated snapshot accepted");
    std::vector<std::uint8_t> extended = bytes;
    extended.push_back(0);
    expect_reject(extended.data(), extended.size(),
                  "trailing byte accepted");
    std::vector<std::uint8_t> header = bytes;
    header[1] ^= 0x40;  // magic
    expect_reject(header.data(), header.size(), "bad magic accepted");
    header = bytes;
    header[4] ^= 0x02;  // version
    expect_reject(header.data(), header.size(), "bad version accepted");

    for (int flip = 0; flip < 32; ++flip) {
      std::vector<std::uint8_t> mutated = bytes;
      mutated[rng.below(mutated.size())] ^=
          static_cast<std::uint8_t>(1u << rng.below(8));
      try {
        const TemporalGraph got = decode_snapshot(
            std::make_shared<const std::vector<std::uint8_t>>(mutated));
        // The validator let this mutation through, so the graph must be
        // fully usable (drive an engine over it) and canonical (its
        // encoding IS the mutated buffer).
        SingleSourceEngine probe(got, 0);
        probe.run_to_fixpoint(16);
        if (encode_snapshot(got) != mutated)
          snapshot_failure("accepted bit flip does not re-encode", g, seed);
      } catch (const SnapshotError&) {
        // Rejection is the common, correct outcome.
      }
    }
  }
  std::printf("odtn_fuzz: %ld snapshot trials passed (seeds %llu..%llu)\n",
              trials, static_cast<unsigned long long>(base_seed),
              static_cast<unsigned long long>(
                  base_seed + static_cast<std::uint64_t>(trials) - 1));
  return 0;
}

[[noreturn]] void live_failure(const char* what, const TemporalGraph& g,
                               std::uint64_t seed) {
  std::fprintf(stderr, "LIVE MISMATCH seed=%llu: %s\nreproducer trace:\n",
               static_cast<unsigned long long>(seed), what);
  std::ostringstream out;
  write_trace(out, g);
  std::fputs(out.str().c_str(), stderr);
  std::exit(1);
}

bool cdf_results_identical(const DelayCdfResult& a, const DelayCdfResult& b) {
  return a.grid == b.grid && a.cdf_by_hops == b.cdf_by_hops &&
         a.cdf_unbounded == b.cdf_unbounded &&
         a.fixpoint_hops == b.fixpoint_hops && a.converged == b.converged &&
         a.denominator == b.denominator &&
         a.diameter(0.01) == b.diameter(0.01) &&
         a.diameter_per_delay(0.01) == b.diameter_per_delay(0.01);
}

/// Live mode (--live N): the tentpole differential. (a) Any K-way
/// canonical-order split of a trace into append epochs must leave every
/// epoch's incremental all-pairs result bit-identical to a cold
/// kDirect run on the prefix ingested so far (empty epochs allowed --
/// they must be clean no-ops). (b) Any byte-split of the trace's
/// serialization through StreamingTraceParser must reproduce the
/// one-shot read_trace graph, including a final line with its newline
/// stripped (the flush() path).
int live_trials(long trials, std::uint64_t base_seed) {
  for (long trial = 0; trial < trials; ++trial) {
    const std::uint64_t seed = base_seed + static_cast<std::uint64_t>(trial);
    Rng rng(seed);
    TemporalGraph g = adversarial_trace(rng);
    if (rng.bernoulli(0.3))
      g = TemporalGraph(g.num_nodes(), g.contacts_vector(),
                        /*directed=*/true);
    const auto contacts = g.contacts();

    // (a) Epoch-split differential against cold prefix recomputes.
    IncrementalCdfOptions io;
    io.grid = make_log_grid(0.5, 400.0, 8 + rng.below(9));
    io.max_hops = 1 + static_cast<int>(rng.below(6));
    io.num_threads = 1;
    io.t_lo = g.start_time();
    io.t_hi = g.end_time();
    DelayCdfOptions cold_opt;
    cold_opt.grid = io.grid;
    cold_opt.max_hops = io.max_hops;
    cold_opt.max_levels = io.max_levels;
    cold_opt.t_lo = io.t_lo;
    cold_opt.t_hi = io.t_hi;
    cold_opt.num_threads = 1;
    cold_opt.accumulation = CdfAccumulation::kDirect;

    const std::size_t epochs = 1 + rng.below(4);
    std::vector<std::size_t> cuts{0, contacts.size()};
    for (std::size_t e = 1; e < epochs; ++e)
      cuts.push_back(rng.below(contacts.size() + 1));
    std::sort(cuts.begin(), cuts.end());

    IncrementalAllPairsEngine engine(g.num_nodes(), g.directed(), io);
    for (std::size_t e = 0; e + 1 < cuts.size(); ++e) {
      const std::size_t hi = cuts[e + 1];
      engine.append(contacts.subspan(cuts[e], hi - cuts[e]));
      const DelayCdfResult live = engine.all_pairs();
      const TemporalGraph prefix(
          g.num_nodes(),
          std::vector<Contact>(contacts.begin(),
                               contacts.begin() + static_cast<long>(hi)),
          g.directed());
      const DelayCdfResult cold = compute_delay_cdf(prefix, cold_opt);
      if (!cdf_results_identical(live, cold))
        live_failure("incremental epoch diverged from cold prefix recompute",
                     g, seed);
    }

    // (b) Byte-split streaming parse vs the one-shot parser.
    std::ostringstream out;
    write_trace(out, g);
    std::string text = out.str();
    const bool strip_newline =
        !text.empty() && text.back() == '\n' && rng.bernoulli(0.5);
    if (strip_newline) text.pop_back();
    std::istringstream in(text);
    const TemporalGraph oneshot = read_trace(in);

    StreamingTraceParser parser;
    std::vector<Contact> drained;
    std::size_t at = 0;
    const bool byte_at_a_time = rng.bernoulli(0.25);
    while (at < text.size()) {
      const std::size_t chunk =
          byte_at_a_time ? 1
                         : std::min(text.size() - at, 1 + rng.below(48));
      parser.feed(text.data() + at, chunk);
      at += chunk;
      if (rng.bernoulli(0.5)) {
        const std::vector<Contact> batch = parser.drain_contacts();
        drained.insert(drained.end(), batch.begin(), batch.end());
      }
    }
    parser.flush();
    if (!parser.header_complete())
      live_failure("streaming parser missed the trace headers", g, seed);
    {
      const std::vector<Contact> batch = parser.drain_contacts();
      drained.insert(drained.end(), batch.begin(), batch.end());
    }
    const TemporalGraph streamed(parser.declared_nodes(), std::move(drained),
                                 parser.directed());
    if (!graphs_identical(streamed, oneshot))
      live_failure("byte-split streaming parse diverged from one-shot parse",
                   g, seed);
  }
  std::printf("odtn_fuzz: %ld live trials passed (seeds %llu..%llu)\n",
              trials, static_cast<unsigned long long>(base_seed),
              static_cast<unsigned long long>(
                  base_seed + static_cast<std::uint64_t>(trials) - 1));
  return 0;
}

/// Fixed-corpus smoke: ok_* files must parse strict cleanly, every
/// other file must raise TraceError in strict mode; lenient and
/// canonicalize runs must never crash on any of them.
int corpus_pass(const std::string& dir) {
  namespace fs = std::filesystem;
  std::vector<fs::path> files;
  for (const auto& entry : fs::directory_iterator(dir))
    if (entry.is_regular_file()) files.push_back(entry.path());
  std::sort(files.begin(), files.end());
  if (files.empty()) {
    std::fprintf(stderr, "odtn_fuzz: empty corpus directory %s\n",
                 dir.c_str());
    return 1;
  }
  int failures = 0;
  for (const fs::path& file : files) {
    const std::string name = file.filename().string();
    const bool expect_ok = name.rfind("ok_", 0) == 0;
    const char* outcome = nullptr;
    std::string detail;
    try {
      read_trace_file(file.string());
      outcome = expect_ok ? "ok" : "UNEXPECTED ACCEPT";
    } catch (const TraceError& e) {
      outcome = expect_ok ? "UNEXPECTED REJECT" : "rejected";
      detail = trace_error_name(e.code());
      if (expect_ok) detail += std::string(": ") + e.what();
    }
    for (const bool canonicalize : {false, true}) {
      try {
        ParseReport report;
        read_trace_file(file.string(),
                        {ParseMode::kLenient, canonicalize, 64}, &report);
      } catch (const TraceError&) {
        // Fatal-in-both-modes defects are fine; crashes are not.
      }
    }
    const bool ok = std::strncmp(outcome, "UNEXPECTED", 10) != 0;
    std::printf("  [%s] %-32s %s%s%s\n", ok ? "PASS" : "FAIL", name.c_str(),
                outcome, detail.empty() ? "" : " ", detail.c_str());
    if (!ok) ++failures;
  }
  if (failures) {
    std::fprintf(stderr, "odtn_fuzz: %d corpus expectation(s) FAILED\n",
                 failures);
    return 1;
  }
  std::printf("odtn_fuzz: corpus pass ok (%zu files)\n", files.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  long engine_count = -1;
  long parser_count = -1;
  long kernel_count = -1;
  long shard_count = -1;
  long batch_count = -1;
  long snapshot_count = -1;
  long live_count = -1;
  std::string corpus_dir;
  std::uint64_t seed = 1;
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg(argv[i]);
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "odtn_fuzz: %s needs a value\n", argv[i]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--engine") {
      engine_count = std::strtol(next(), nullptr, 10);
    } else if (arg == "--parser") {
      parser_count = std::strtol(next(), nullptr, 10);
    } else if (arg == "--kernel") {
      kernel_count = std::strtol(next(), nullptr, 10);
    } else if (arg == "--shard") {
      shard_count = std::strtol(next(), nullptr, 10);
    } else if (arg == "--batch") {
      batch_count = std::strtol(next(), nullptr, 10);
    } else if (arg == "--snapshot") {
      snapshot_count = std::strtol(next(), nullptr, 10);
    } else if (arg == "--live") {
      live_count = std::strtol(next(), nullptr, 10);
    } else if (arg == "--corpus") {
      corpus_dir = next();
    } else if (arg == "--seed") {
      seed = static_cast<std::uint64_t>(std::strtoll(next(), nullptr, 10));
    } else {
      positional.emplace_back(arg);
    }
  }
  // Legacy positional form: [engine-trials] [base-seed].
  if (!positional.empty())
    engine_count = std::strtol(positional[0].c_str(), nullptr, 10);
  if (positional.size() > 1)
    seed = static_cast<std::uint64_t>(
        std::strtoll(positional[1].c_str(), nullptr, 10));
  if (engine_count < 0 && parser_count < 0 && kernel_count < 0 &&
      shard_count < 0 && batch_count < 0 && snapshot_count < 0 &&
      live_count < 0 && corpus_dir.empty())
    engine_count = 200;

  int rc = 0;
  if (!corpus_dir.empty()) rc |= corpus_pass(corpus_dir);
  if (parser_count > 0) rc |= parser_trials(parser_count, seed);
  if (kernel_count > 0) rc |= kernel_trials(kernel_count, seed);
  if (shard_count > 0) rc |= shard_trials(shard_count, seed);
  if (batch_count > 0) rc |= batch_trials(batch_count, seed);
  if (snapshot_count > 0) rc |= snapshot_trials(snapshot_count, seed);
  if (live_count > 0) rc |= live_trials(live_count, seed);
  if (engine_count > 0) rc |= engine_trials(engine_count, seed);
  return rc;
}
