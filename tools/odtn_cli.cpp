// The `odtn` command-line tool. All logic lives in src/cli/ so it is
// unit-testable; this is only the process entry point.
#include <string>
#include <vector>

#include "cli/commands.hpp"

int main(int argc, char** argv) {
  std::vector<std::string> args;
  args.reserve(static_cast<std::size_t>(argc > 0 ? argc - 1 : 0));
  for (int i = 1; i < argc; ++i) args.emplace_back(argv[i]);
  return odtn::cli::run_cli(std::move(args));
}
