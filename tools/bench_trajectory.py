#!/usr/bin/env python3
"""Aggregate the per-PR bench gate files into one trajectory summary.

Every perf PR records its hard-gate results in bench_out/BENCH_pr<N>.json
(written by the bench binaries themselves). This script folds them into
bench_out/BENCH_TRAJECTORY.json so the perf story of the repo -- which
gates exist, whether they pass, and the headline speedups per PR -- is
readable in one place and diffable across PRs.

Stdlib only; run from the repository root (or pass --bench-out):

    python3 tools/bench_trajectory.py

Exits non-zero if any recorded gate failed, so CI can run it as a check
over whatever BENCH files the job produced.
"""

import argparse
import glob
import json
import os
import re
import sys


def record_gates(record):
    """Yield (gate_name, passed) for the gate conventions used so far."""
    if "gate" in record and "gate_pass" in record:
        yield str(record["gate"]), bool(record["gate_pass"])
    # bench_perf_engine (pr3/5/6) styles: boolean semantic checks.
    for key in ("diameters_match", "semantics_ok"):
        if key in record:
            yield key, bool(record[key])
    # bench_perf_shard (pr7): explicit bit-identity flag on gated rows.
    if record.get("gated", False) and "bit_identical" in record:
        yield "bit_identical", bool(record["bit_identical"])


def max_speedup(record):
    best = None
    for key, value in record.items():
        if "speedup" in key and isinstance(value, (int, float)):
            best = value if best is None else max(best, value)
    return best


def top_level_gates(data):
    """Split a bench's top-level "gates" list (pr10+) into hard boolean
    gates and perf targets. A target entry carries "value"/"threshold"
    and records a measurement against a goal -- it is summarized but
    does not fail the aggregation (the bench binary already chose its
    exit-code semantics; bench_perf_batch documents its CPU sweep as a
    negative result on single-core containers)."""
    hard, targets = [], []
    for g in data.get("gates", []):
        if "value" in g and "threshold" in g:
            targets.append({"gate": g.get("gate"),
                            "value": g.get("value"),
                            "threshold": g.get("threshold"),
                            "gate_pass": bool(g.get("gate_pass"))})
        elif "gate" in g and "gate_pass" in g:
            hard.append((str(g["gate"]), bool(g["gate_pass"])))
    return hard, targets


def summarize(path):
    with open(path, "r", encoding="utf-8") as f:
        data = json.load(f)
    records = data.get("records", [])
    gates_total = 0
    gates_passed = 0
    failed = []
    best = None
    for record in records:
        for name, ok in record_gates(record):
            gates_total += 1
            gates_passed += ok
            if not ok:
                failed.append(name)
        s = max_speedup(record)
        if s is not None:
            best = s if best is None else max(best, s)
    hard, targets = top_level_gates(data)
    for name, ok in hard:
        gates_total += 1
        gates_passed += ok
        if not ok:
            failed.append(name)
    summary = {
        "pr": data.get("pr"),
        "bench": data.get("bench"),
        "metric": data.get("metric"),
        "file": os.path.basename(path),
        "records": len(records),
        "gates_total": gates_total,
        "gates_passed": gates_passed,
        "max_speedup": best,
    }
    if targets:
        summary["perf_targets"] = targets
    if failed:
        summary["failed_gates"] = sorted(set(failed))
    return summary


def pr_number(path):
    m = re.search(r"BENCH_pr(\d+)\.json$", path)
    return int(m.group(1)) if m else 0


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--bench-out", default="bench_out",
                        help="directory holding BENCH_pr*.json "
                             "(default: bench_out)")
    args = parser.parse_args()

    paths = sorted(glob.glob(os.path.join(args.bench_out, "BENCH_pr*.json")),
                   key=pr_number)
    if not paths:
        print(f"bench_trajectory: no BENCH_pr*.json under {args.bench_out}",
              file=sys.stderr)
        return 1

    trajectory = [summarize(p) for p in paths]
    gates_total = sum(t["gates_total"] for t in trajectory)
    gates_passed = sum(t["gates_passed"] for t in trajectory)
    out = {
        "generated_by": "tools/bench_trajectory.py",
        "benches": len(trajectory),
        "gates_total": gates_total,
        "gates_passed": gates_passed,
        "all_gates_pass": gates_passed == gates_total,
        "trajectory": trajectory,
    }
    out_path = os.path.join(args.bench_out, "BENCH_TRAJECTORY.json")
    with open(out_path, "w", encoding="utf-8") as f:
        json.dump(out, f, indent=2)
        f.write("\n")

    for t in trajectory:
        speedup = (f"max speedup {t['max_speedup']:.2f}x"
                   if t["max_speedup"] is not None else "no speedup field")
        print(f"  pr{t['pr']:<3} {t['bench']:<22} "
              f"gates {t['gates_passed']}/{t['gates_total']:<3} {speedup}")
    print(f"wrote {out_path}: {gates_passed}/{gates_total} gates pass "
          f"across {len(trajectory)} benches")
    return 0 if gates_passed == gates_total else 1


if __name__ == "__main__":
    sys.exit(main())
