#!/usr/bin/env sh
# Extended verify: a fast `quick`-labelled smoke pass, then the tier-1
# recipe (Release build + full ctest), then a second ctest pass under
# ASan + UBSan (the `sanitize` CMake preset) and a third pass of the
# concurrency suites (thread pool, MC harness, empirical distribution,
# phase transition) under ThreadSanitizer (the `tsan` preset). Run from
# the repository root. Exits non-zero on the first failure.
set -eu

cd "$(dirname "$0")/.."

echo "== tier-0: Release build + quick smoke (ctest -L quick) =="
cmake --preset release
cmake --build --preset release -j
ctest --preset quick

echo "== tier-1: full ctest =="
ctest --preset release

echo "== tier-2: ASan+UBSan build + ctest =="
cmake --preset sanitize
cmake --build --preset sanitize -j
ctest --preset sanitize

echo "== tier-3: TSan build + concurrency suites =="
cmake --preset tsan
cmake --build --preset tsan -j
ctest --preset tsan

echo "== verify OK =="
