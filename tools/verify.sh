#!/usr/bin/env sh
# Extended verify: a fast `quick`-labelled smoke pass, then the tier-1
# recipe (Release build + full ctest), then a second ctest pass under
# ASan + UBSan (the `sanitize` CMake preset) plus fuzz smokes under the
# same sanitizers -- parser (malformed-trace corpus + randomized byte
# mutations), kernel (batched frontier merge vs per-pair insert
# differential, pooled-vs-indexed engine parity, arena span bounds),
# batch (lockstep multi-source blocks vs the per-source pooled driver)
# and snapshot (framing rejection + round-trip bit-identity) --
# and a final pass of the concurrency suites (thread pool,
# MC harness, empirical distribution, phase transition) under
# ThreadSanitizer (the `tsan` preset). Run from the repository root.
# Exits non-zero on the first failure.
set -eu

cd "$(dirname "$0")/.."

echo "== tier-0: Release build + quick smoke (ctest -L quick) =="
cmake --preset release
cmake --build --preset release -j
ctest --preset quick

echo "== tier-1: full ctest =="
ctest --preset release

echo "== tier-2: ASan+UBSan build + ctest =="
cmake --preset sanitize
cmake --build --preset sanitize -j
ctest --preset sanitize

echo "== tier-2b: parser + kernel + shard fuzz smoke under ASan+UBSan =="
./build-sanitize/tools/odtn_fuzz --corpus tests/corpus
./build-sanitize/tools/odtn_fuzz --parser 300 --seed 1
./build-sanitize/tools/odtn_fuzz --kernel 300 --seed 1
# Sharded-vs-unsharded differential: random shard counts and policies
# must reproduce the classic driver bit for bit, and every run
# round-trips the ShardRequest/ShardResult wire encodings.
./build-sanitize/tools/odtn_fuzz --shard 60 --seed 1
# Batched-vs-pooled differential: random traces, batch sizes and
# endpoint subsets must reproduce the per-source pooled driver bit for
# bit at every B (including B > num_sources and B = 1).
./build-sanitize/tools/odtn_fuzz --batch 60 --seed 1
# Snapshot framing: encode/decode round-trips bit-identically, every
# prefix truncation, header lie and random bit flip must throw
# SnapshotError (or decode to a graph that re-encodes to the mutated
# bytes), never crash or read out of bounds.
./build-sanitize/tools/odtn_fuzz --snapshot 200 --seed 1
# Live-ingestion differential: random K-way epoch splits must stay
# bit-identical to cold prefix recomputes, and byte-split streaming
# parses (including a stripped final newline) must match the one-shot
# parser.
./build-sanitize/tools/odtn_fuzz --live 60 --seed 1
# Forced-scalar pass: pins the dispatch layer to the mandatory fallback
# so the scalar kernels stay exercised under the sanitizers even on
# AVX2 hardware (the default run sweeps scalar..best-supported).
ODTN_SIMD=scalar ./build-sanitize/tools/odtn_fuzz --kernel 300 --seed 1

echo "== tier-3: TSan build + concurrency suites =="
cmake --preset tsan
cmake --build --preset tsan -j
ctest --preset tsan

echo "== verify OK =="
